use crate::{DoorId, PartitionId};
use geometry::{Point, Rect};
use indoor_graph::CsrGraph;

/// Declared role of a partition. Purely descriptive: query processing only
/// ever looks at the derived [`PartitionClass`], but generators and
/// examples use the kind for weight policies (lifts may use travel time)
/// and for object placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionKind {
    Room,
    Hallway,
    /// A staircase segment connecting two consecutive floors (§2: "a
    /// staircase ... is considered as a general partition with two doors at
    /// its connecting floors").
    Staircase,
    /// One segment of a lift shaft connecting two consecutive floors (§2:
    /// a lift connecting n floors becomes n-1 such partitions).
    Lift,
    Escalator,
    /// Outdoor space between buildings of a campus venue; induces the
    /// paper's "edges between the entry/exit doors of different buildings".
    Outdoor,
}

/// Classification by door count (§2): exactly one door = no-through; more
/// than β doors = hallway; otherwise general.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionClass {
    NoThrough,
    General,
    Hallway,
}

/// A door connecting one partition to another (or to the venue exterior).
#[derive(Debug, Clone)]
pub struct Door {
    pub id: DoorId,
    pub position: Point,
    /// The one or two partitions this door belongs to. `partitions[1]` is
    /// `None` for exterior doors.
    pub partitions: [Option<PartitionId>; 2],
}

impl Door {
    /// Iterate over the partitions the door belongs to.
    #[inline]
    pub fn partition_ids(&self) -> impl Iterator<Item = PartitionId> + '_ {
        self.partitions.iter().flatten().copied()
    }

    /// Whether this door leads out of the venue.
    #[inline]
    pub fn is_exterior(&self) -> bool {
        self.partitions[1].is_none()
    }

    /// The partition on the other side of the door, if any.
    #[inline]
    pub fn other_side(&self, p: PartitionId) -> Option<PartitionId> {
        match self.partitions {
            [Some(a), Some(b)] if a == p => Some(b),
            [Some(a), Some(b)] if b == p => Some(a),
            _ => None,
        }
    }
}

/// An indoor partition: a room, hallway, staircase/lift segment, or the
/// outdoor space. Treated as convex free space: the distance between any
/// two of its doors (and from interior points to its doors) is the direct
/// indoor metric distance, unless a fixed traversal weight is set (lifts).
#[derive(Debug, Clone)]
pub struct Partition {
    pub id: PartitionId,
    pub kind: PartitionKind,
    /// Floor of the partition (the lower floor for stairs/lift segments).
    pub level: i32,
    /// Planar extent, used for random point generation and door placement.
    pub extent: Rect,
    /// Doors of this partition (unordered, no duplicates).
    pub doors: Vec<DoorId>,
    /// If set, every door-to-door traversal through this partition costs
    /// this fixed weight instead of the metric distance — e.g. `0.0` for a
    /// lift when weights model walking distance, or a constant when they
    /// model travel time (§2).
    pub fixed_traversal_weight: Option<f64>,
}

impl Partition {
    #[inline]
    pub fn num_doors(&self) -> usize {
        self.doors.len()
    }

    /// Distance between two points of this partition under its weight
    /// policy.
    #[inline]
    pub fn traversal_distance(&self, a: &Point, b: &Point) -> f64 {
        match self.fixed_traversal_weight {
            Some(w) => w,
            None => a.distance(b),
        }
    }
}

/// An edge of the accessibility-base graph: two partitions joined by a
/// door. Exterior doors do not produce AB edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbEdge {
    pub from: PartitionId,
    pub to: PartitionId,
    pub door: DoorId,
}

/// Summary statistics in the shape of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VenueStats {
    pub doors: usize,
    pub partitions: usize,
    /// Directed arc count of the D2D graph (Table 2 convention).
    pub d2d_edges: usize,
    pub hallways: usize,
    pub no_through: usize,
    pub max_out_degree: usize,
    pub levels: usize,
}

/// A complete indoor venue: partitions, doors, and the derived D2D graph.
///
/// Constructed through [`crate::VenueBuilder`]; immutable afterwards.
#[derive(Debug, Clone)]
pub struct Venue {
    pub(crate) doors: Vec<Door>,
    pub(crate) partitions: Vec<Partition>,
    pub(crate) classes: Vec<PartitionClass>,
    pub(crate) d2d: CsrGraph,
    pub(crate) beta: usize,
}

impl Venue {
    #[inline]
    pub fn num_doors(&self) -> usize {
        self.doors.len()
    }

    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    #[inline]
    pub fn door(&self, id: DoorId) -> &Door {
        &self.doors[id.index()]
    }

    #[inline]
    pub fn partition(&self, id: PartitionId) -> &Partition {
        &self.partitions[id.index()]
    }

    #[inline]
    pub fn doors(&self) -> &[Door] {
        &self.doors
    }

    #[inline]
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The door-to-door graph (vertex ids coincide with [`DoorId`]s).
    #[inline]
    pub fn d2d(&self) -> &CsrGraph {
        &self.d2d
    }

    /// The hallway-classification threshold β used for this venue.
    #[inline]
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// Derived classification of a partition (§2).
    #[inline]
    pub fn class(&self, id: PartitionId) -> PartitionClass {
        self.classes[id.index()]
    }

    /// Whether a door leads (only) to a no-through partition on its far
    /// side when leaving `from`. Used by the DistMx query optimisation of
    /// §4.3.1: such doors can never be on a shortest path leaving `from`.
    pub fn leads_to_no_through(&self, door: DoorId, from: PartitionId) -> bool {
        match self.door(door).other_side(from) {
            Some(other) => self.class(other) == PartitionClass::NoThrough,
            None => true, // exterior: nothing beyond, cannot pass through
        }
    }

    /// Doors of `p` that can appear on a shortest path leaving `p` towards
    /// a destination outside `p` (excludes doors into no-through
    /// partitions and exterior dead-end doors).
    pub fn through_doors(&self, p: PartitionId) -> impl Iterator<Item = DoorId> + '_ {
        self.partition(p)
            .doors
            .iter()
            .copied()
            .filter(move |&d| !self.leads_to_no_through(d, p))
    }

    /// Build the accessibility-base graph edge list (§2, Fig. 2(b)).
    pub fn ab_edges(&self) -> Vec<AbEdge> {
        let mut edges = Vec::new();
        for door in &self.doors {
            if let [Some(a), Some(b)] = door.partitions {
                edges.push(AbEdge {
                    from: a,
                    to: b,
                    door: door.id,
                });
            }
        }
        edges
    }

    /// Adjacent partitions of `p` along with the number of shared doors,
    /// used by IP-tree leaf construction (rule i of §2.1.2).
    pub fn adjacent_partitions(&self, p: PartitionId) -> Vec<(PartitionId, usize)> {
        let mut counts: Vec<(PartitionId, usize)> = Vec::new();
        for &d in &self.partition(p).doors {
            if let Some(other) = self.door(d).other_side(p) {
                match counts.iter_mut().find(|(q, _)| *q == other) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((other, 1)),
                }
            }
        }
        counts
    }

    /// Table 2 style statistics.
    pub fn stats(&self) -> VenueStats {
        let mut levels: Vec<i32> = self.partitions.iter().map(|p| p.level).collect();
        levels.sort_unstable();
        levels.dedup();
        VenueStats {
            doors: self.doors.len(),
            partitions: self.partitions.len(),
            d2d_edges: self.d2d.num_arcs(),
            hallways: self
                .classes
                .iter()
                .filter(|c| **c == PartitionClass::Hallway)
                .count(),
            no_through: self
                .classes
                .iter()
                .filter(|c| **c == PartitionClass::NoThrough)
                .count(),
            max_out_degree: self.d2d.max_degree(),
            levels: levels.len(),
        }
    }

    /// Approximate heap size of the model (doors + partitions + D2D graph).
    pub fn size_bytes(&self) -> usize {
        self.d2d.size_bytes()
            + self.doors.len() * std::mem::size_of::<Door>()
            + self
                .partitions
                .iter()
                .map(|p| std::mem::size_of::<Partition>() + p.doors.len() * 4)
                .sum::<usize>()
    }
}
