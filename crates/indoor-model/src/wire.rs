//! Binary wire vocabulary for durable storage of the churn stream.
//!
//! The persistence subsystem (`vip_tree::persist`) journals object
//! mutations and snapshots whole services to disk; this module owns the
//! primitive encoding those files are made of — little-endian scalars,
//! length-prefixed strings, and the record encode/decode of the churn
//! types ([`ObjectDelta`] / [`ObjectUpdate`]) that ride the write-ahead
//! log. Keeping the vocabulary here (next to the types it encodes) means
//! every index crate can speak the same byte layout, and the encoding of
//! a delta cannot drift from the definition of a delta.
//!
//! Decoding is position-tracked: every failure is a [`LoadError::Wire`]
//! carrying the byte offset plus what was expected and what was found,
//! so a corrupt record in a megabyte-long log names its own location.
//!
//! `f64` values are stored as raw IEEE-754 bit patterns — a snapshot
//! reloads distances bit-for-bit, which is what makes "recovered service
//! answers byte-identical" a testable contract rather than an epsilon
//! comparison.

use crate::serialize::LoadError;
use crate::{
    DoorId, IndoorPath, IndoorPoint, ObjectDelta, ObjectId, ObjectUpdate, PartitionId,
    QueryRequest, QueryResponse,
};
use geometry::Point;
use std::sync::Arc;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
/// framing every snapshot section and WAL record, computed without any
/// external dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    // 256-entry table built on first use; `OnceLock` keeps it `const`-free.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Append-only little-endian encoder over a plain `Vec<u8>`.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Raw IEEE-754 bit pattern: reload is bit-for-bit, NaN included.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed (u32) raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed (u32) UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn put_point(&mut self, p: &IndoorPoint) {
        self.put_u32(p.partition.0);
        self.put_f64(p.position.x);
        self.put_f64(p.position.y);
        self.put_i32(p.position.level);
    }

    pub fn put_delta(&mut self, d: &ObjectDelta) {
        match d {
            ObjectDelta::Insert { id, at } => {
                self.put_u8(0);
                self.put_u32(id.0);
                self.put_point(at);
            }
            ObjectDelta::Remove { id } => {
                self.put_u8(1);
                self.put_u32(id.0);
            }
            ObjectDelta::Move { id, to } => {
                self.put_u8(2);
                self.put_u32(id.0);
                self.put_point(to);
            }
        }
    }

    /// Count-prefixed point list — the one definition every file kind
    /// encodes object positions with.
    pub fn put_points(&mut self, points: &[IndoorPoint]) {
        self.put_u32(points.len() as u32);
        for p in points {
            self.put_point(p);
        }
    }

    /// Count-prefixed label list (the keyword vocabulary attached to an
    /// object) — the one definition every file kind encodes labels with.
    pub fn put_labels(&mut self, labels: &[String]) {
        self.put_u32(labels.len() as u32);
        for l in labels {
            self.put_str(l);
        }
    }

    pub fn put_update(&mut self, u: &ObjectUpdate) {
        self.put_delta(&u.delta);
        self.put_labels(&u.labels);
    }

    /// A typed query request, tagged by [`crate::QueryKind::index`]. `k` rides as
    /// a `u64` so the layout is identical across 32/64-bit hosts.
    pub fn put_request(&mut self, req: &QueryRequest) {
        self.put_u8(req.kind().index() as u8);
        match req {
            QueryRequest::Knn { q, k } => {
                self.put_point(q);
                self.put_u64(*k as u64);
            }
            QueryRequest::Range { q, radius } => {
                self.put_point(q);
                self.put_f64(*radius);
            }
            QueryRequest::KnnKeyword { q, k, keyword } => {
                self.put_point(q);
                self.put_u64(*k as u64);
                self.put_str(keyword);
            }
            QueryRequest::ShortestDistance { s, t } | QueryRequest::ShortestPath { s, t } => {
                self.put_point(s);
                self.put_point(t);
            }
        }
    }

    /// A fully-expanded route (see [`IndoorPath`]): endpoints, door
    /// sequence, and the length as a raw bit pattern.
    pub fn put_path(&mut self, p: &IndoorPath) {
        self.put_point(&p.source);
        self.put_point(&p.target);
        self.put_u32(p.doors.len() as u32);
        for d in &p.doors {
            self.put_u32(d.0);
        }
        self.put_f64(p.length);
    }

    /// Count-prefixed `(object, distance)` list — the payload of every
    /// kNN/range/keyword response.
    pub fn put_scored(&mut self, objs: &[(ObjectId, f64)]) {
        self.put_u32(objs.len() as u32);
        for (id, d) in objs {
            self.put_u32(id.0);
            self.put_f64(*d);
        }
    }

    /// A typed query response, tagged like its request. Distances and
    /// paths ride as bit patterns, so a response decoded off the wire is
    /// byte-identical to the in-process answer — the loopback e2e contract.
    pub fn put_response(&mut self, resp: &QueryResponse) {
        self.put_u8(resp.kind().index() as u8);
        match resp {
            QueryResponse::Knn(objs)
            | QueryResponse::Range(objs)
            | QueryResponse::KnnKeyword(objs) => {
                self.put_scored(objs);
            }
            QueryResponse::ShortestDistance(d) => match d {
                Some(d) => {
                    self.put_u8(1);
                    self.put_f64(*d);
                }
                None => self.put_u8(0),
            },
            QueryResponse::ShortestPath(p) => match p {
                Some(p) => {
                    self.put_u8(1);
                    self.put_path(p);
                }
                None => self.put_u8(0),
            },
        }
    }
}

/// Position-tracked little-endian decoder; every error names its byte
/// offset and what was expected there.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Current byte offset from the start of the buffer.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// A decode failure at the current offset.
    pub fn err(&self, expected: &'static str, found: impl Into<String>) -> LoadError {
        LoadError::Wire {
            offset: self.pos as u64,
            expected,
            found: found.into(),
        }
    }

    fn take(&mut self, n: usize, expected: &'static str) -> Result<&'a [u8], LoadError> {
        if self.remaining() < n {
            return Err(self.err(
                expected,
                format!("only {} of {n} bytes left", self.remaining()),
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self, expected: &'static str) -> Result<u8, LoadError> {
        Ok(self.take(1, expected)?[0])
    }

    pub fn get_u32(&mut self, expected: &'static str) -> Result<u32, LoadError> {
        Ok(u32::from_le_bytes(
            self.take(4, expected)?.try_into().unwrap(),
        ))
    }

    pub fn get_u64(&mut self, expected: &'static str) -> Result<u64, LoadError> {
        Ok(u64::from_le_bytes(
            self.take(8, expected)?.try_into().unwrap(),
        ))
    }

    pub fn get_i32(&mut self, expected: &'static str) -> Result<i32, LoadError> {
        Ok(i32::from_le_bytes(
            self.take(4, expected)?.try_into().unwrap(),
        ))
    }

    pub fn get_f64(&mut self, expected: &'static str) -> Result<f64, LoadError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8, expected)?.try_into().unwrap(),
        )))
    }

    /// Length-prefixed raw bytes; the length is sanity-checked against the
    /// remaining buffer before allocation.
    pub fn get_bytes(&mut self, expected: &'static str) -> Result<&'a [u8], LoadError> {
        let len = self.get_u32(expected)? as usize;
        if len > self.remaining() {
            return Err(self.err(
                expected,
                format!("length prefix {len} exceeds remaining {}", self.remaining()),
            ));
        }
        self.take(len, expected)
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self, expected: &'static str) -> Result<&'a str, LoadError> {
        let start = self.pos;
        let bytes = self.get_bytes(expected)?;
        std::str::from_utf8(bytes).map_err(|e| LoadError::Wire {
            offset: start as u64,
            expected,
            found: format!("invalid UTF-8 ({e})"),
        })
    }

    pub fn get_point(&mut self) -> Result<IndoorPoint, LoadError> {
        let partition = PartitionId(self.get_u32("point partition id")?);
        let x = self.get_f64("point x")?;
        let y = self.get_f64("point y")?;
        let level = self.get_i32("point level")?;
        Ok(IndoorPoint::new(partition, Point::new(x, y, level)))
    }

    pub fn get_delta(&mut self) -> Result<ObjectDelta, LoadError> {
        let kind = self.get_u8("delta kind tag")?;
        let id = ObjectId(self.get_u32("delta object id")?);
        Ok(match kind {
            0 => ObjectDelta::Insert {
                id,
                at: self.get_point()?,
            },
            1 => ObjectDelta::Remove { id },
            2 => ObjectDelta::Move {
                id,
                to: self.get_point()?,
            },
            other => {
                return Err(self.err("delta kind tag 0..=2", format!("tag {other}")));
            }
        })
    }

    /// Count-prefixed point list (see [`WireWriter::put_points`]). The
    /// count is capped before allocation so a corrupt length prefix
    /// cannot trigger a huge reserve.
    pub fn get_points(&mut self) -> Result<Vec<IndoorPoint>, LoadError> {
        let n = self.get_u32("point count")? as usize;
        let mut points = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            points.push(self.get_point()?);
        }
        Ok(points)
    }

    /// Count-prefixed label list (see [`WireWriter::put_labels`]).
    pub fn get_labels(&mut self) -> Result<Vec<String>, LoadError> {
        let n = self.get_u32("label count")? as usize;
        let mut labels = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            labels.push(self.get_str("label")?.to_string());
        }
        Ok(labels)
    }

    pub fn get_update(&mut self) -> Result<ObjectUpdate, LoadError> {
        let delta = self.get_delta()?;
        let labels = self.get_labels()?;
        Ok(ObjectUpdate { delta, labels })
    }

    /// Decode a typed query request (see [`WireWriter::put_request`]).
    pub fn get_request(&mut self) -> Result<QueryRequest, LoadError> {
        let tag = self.get_u8("request kind tag")?;
        Ok(match tag {
            0 => QueryRequest::Knn {
                q: self.get_point()?,
                k: self.get_u64("knn k")? as usize,
            },
            1 => QueryRequest::Range {
                q: self.get_point()?,
                radius: self.get_f64("range radius")?,
            },
            2 => QueryRequest::KnnKeyword {
                q: self.get_point()?,
                k: self.get_u64("keyword knn k")? as usize,
                keyword: Arc::from(self.get_str("keyword")?),
            },
            3 => QueryRequest::ShortestDistance {
                s: self.get_point()?,
                t: self.get_point()?,
            },
            4 => QueryRequest::ShortestPath {
                s: self.get_point()?,
                t: self.get_point()?,
            },
            other => {
                return Err(self.err("request kind tag 0..=4", format!("tag {other}")));
            }
        })
    }

    /// Decode a route (see [`WireWriter::put_path`]).
    pub fn get_path(&mut self) -> Result<IndoorPath, LoadError> {
        let source = self.get_point()?;
        let target = self.get_point()?;
        let n = self.get_u32("path door count")? as usize;
        let mut doors = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            doors.push(DoorId(self.get_u32("path door id")?));
        }
        let length = self.get_f64("path length")?;
        Ok(IndoorPath {
            source,
            target,
            doors,
            length,
        })
    }

    /// Decode a `(object, distance)` list (see [`WireWriter::put_scored`]).
    pub fn get_scored(&mut self) -> Result<Vec<(ObjectId, f64)>, LoadError> {
        let n = self.get_u32("scored object count")? as usize;
        let mut objs = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            let id = ObjectId(self.get_u32("scored object id")?);
            let d = self.get_f64("scored object distance")?;
            objs.push((id, d));
        }
        Ok(objs)
    }

    /// Decode a typed query response (see [`WireWriter::put_response`]).
    pub fn get_response(&mut self) -> Result<QueryResponse, LoadError> {
        let tag = self.get_u8("response kind tag")?;
        Ok(match tag {
            0 => QueryResponse::Knn(self.get_scored()?),
            1 => QueryResponse::Range(self.get_scored()?),
            2 => QueryResponse::KnnKeyword(self.get_scored()?),
            3 => QueryResponse::ShortestDistance(match self.get_u8("distance presence flag")? {
                0 => None,
                1 => Some(self.get_f64("shortest distance")?),
                other => {
                    return Err(self.err("distance presence flag 0/1", format!("flag {other}")));
                }
            }),
            4 => QueryResponse::ShortestPath(match self.get_u8("path presence flag")? {
                0 => None,
                1 => Some(self.get_path()?),
                other => {
                    return Err(self.err("path presence flag 0/1", format!("flag {other}")));
                }
            }),
            other => {
                return Err(self.err("response kind tag 0..=4", format!("tag {other}")));
            }
        })
    }

    /// Assert the buffer is fully consumed (section payloads are
    /// self-delimiting; leftover bytes mean a format mismatch).
    pub fn finish(&self, expected: &'static str) -> Result<(), LoadError> {
        if self.remaining() != 0 {
            return Err(self.err(expected, format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalars_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i32(-3);
        w.put_f64(f64::NAN);
        w.put_str("café");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8("u8").unwrap(), 7);
        assert_eq!(r.get_u32("u32").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("u64").unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i32("i32").unwrap(), -3);
        // Bit-pattern round trip: NaN payload preserved.
        assert_eq!(r.get_f64("f64").unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.get_str("str").unwrap(), "café");
        r.finish("end").unwrap();
    }

    #[test]
    fn deltas_and_updates_round_trip() {
        let p = IndoorPoint::new(PartitionId(3), Point::new(1.5, -2.25, 1));
        let cases = [
            ObjectDelta::Insert {
                id: ObjectId(9),
                at: p,
            },
            ObjectDelta::Remove { id: ObjectId(0) },
            ObjectDelta::Move {
                id: ObjectId(4),
                to: p,
            },
        ];
        for d in cases {
            let mut w = WireWriter::new();
            w.put_delta(&d);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.get_delta().unwrap(), d);
            r.finish("end").unwrap();
        }
        let u = ObjectUpdate {
            delta: ObjectDelta::Insert {
                id: ObjectId(2),
                at: p,
            },
            labels: vec!["atm".into(), "café".into()],
        };
        let mut w = WireWriter::new();
        w.put_update(&u);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_update().unwrap(), u);
    }

    #[test]
    fn truncated_reads_name_offset_and_expectation() {
        let mut w = WireWriter::new();
        w.put_u32(5);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.get_u32("first").unwrap();
        let err = r.get_u64("trailing counter").unwrap_err();
        match err {
            LoadError::Wire {
                offset,
                expected,
                found,
            } => {
                assert_eq!(offset, 4);
                assert_eq!(expected, "trailing counter");
                assert!(found.contains("0 of 8"), "{found}");
            }
            other => panic!("wrong variant: {other}"),
        }
    }

    #[test]
    fn requests_round_trip() {
        let p = IndoorPoint::new(PartitionId(1), Point::new(3.5, -0.0, 2));
        let q = IndoorPoint::new(PartitionId(7), Point::new(f64::NAN, 9.0, -1));
        let cases = [
            QueryRequest::Knn { q: p, k: 5 },
            QueryRequest::Range {
                q,
                radius: f64::INFINITY,
            },
            QueryRequest::KnnKeyword {
                q: p,
                k: 0,
                keyword: Arc::from("café"),
            },
            QueryRequest::ShortestDistance { s: p, t: q },
            QueryRequest::ShortestPath { s: q, t: p },
        ];
        for req in cases {
            let mut w = WireWriter::new();
            w.put_request(&req);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            // QueryRequest equality is by bit pattern, so NaN coordinates
            // still compare equal after the round trip.
            assert_eq!(r.get_request().unwrap(), req);
            r.finish("end").unwrap();
        }
    }

    #[test]
    fn responses_round_trip() {
        let p = IndoorPoint::new(PartitionId(1), Point::new(3.5, 4.5, 0));
        let path = IndoorPath {
            source: p,
            target: IndoorPoint::new(PartitionId(2), Point::new(8.0, 1.0, 0)),
            doors: vec![DoorId(3), DoorId(9)],
            length: 12.75,
        };
        let cases = [
            QueryResponse::Knn(vec![(ObjectId(1), 2.5), (ObjectId(4), f64::MAX)]),
            QueryResponse::Range(Vec::new()),
            QueryResponse::KnnKeyword(vec![(ObjectId(0), 0.0)]),
            QueryResponse::ShortestDistance(Some(7.25)),
            QueryResponse::ShortestDistance(None),
            QueryResponse::ShortestPath(Some(path)),
            QueryResponse::ShortestPath(None),
        ];
        for resp in cases {
            let mut w = WireWriter::new();
            w.put_response(&resp);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.get_response().unwrap(), resp);
            r.finish("end").unwrap();
        }
    }

    #[test]
    fn bad_request_and_response_tags_are_rejected() {
        let mut r = WireReader::new(&[5u8]);
        assert!(r.get_request().unwrap_err().to_string().contains("tag 5"));
        let mut r = WireReader::new(&[9u8]);
        assert!(r.get_response().unwrap_err().to_string().contains("tag 9"));
        // Bad presence flag on a shortest-distance response.
        let mut r = WireReader::new(&[3u8, 7u8]);
        assert!(r.get_response().unwrap_err().to_string().contains("flag 7"));
    }

    #[test]
    fn bad_delta_tag_is_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(9);
        w.put_u32(1);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let err = r.get_delta().unwrap_err().to_string();
        assert!(err.contains("tag 9"), "{err}");
    }
}
