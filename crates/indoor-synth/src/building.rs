use geometry::{Point, Rect};
use indoor_model::{PartitionId, PartitionKind, Venue, VenueBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one synthetic building.
///
/// Layout per level: `hallways_per_level` parallel corridors, each lined
/// with rooms on both sides (one door each; a fraction gets a second door
/// to the neighbouring room). Corridors on a level are joined by doors at
/// both ends; consecutive levels are joined by staircases and lift
/// segments attached to the first corridor.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildingSpec {
    pub levels: u32,
    pub rooms_per_level: u32,
    pub hallways_per_level: u32,
    /// Fraction of rooms receiving a second door into the adjacent room.
    pub extra_door_frac: f64,
    /// Staircases between each pair of consecutive levels.
    pub stairs_per_level: u32,
    /// Lift shafts spanning all levels (each becomes `levels - 1` two-door
    /// general partitions, §2).
    pub lifts: u32,
    /// Room width along the corridor, metres.
    pub room_width: f64,
    /// Room depth away from the corridor, metres.
    pub room_depth: f64,
    /// Corridor width, metres.
    pub hall_width: f64,
}

impl Default for BuildingSpec {
    fn default() -> Self {
        BuildingSpec {
            levels: 3,
            rooms_per_level: 40,
            hallways_per_level: 2,
            extra_door_frac: 0.05,
            stairs_per_level: 1,
            lifts: 1,
            room_width: 4.0,
            room_depth: 5.0,
            hall_width: 3.0,
        }
    }
}

impl BuildingSpec {
    /// The §4.1 replication operator: "a replica ... is placed on top of
    /// the original building", joined by the same stairwells.
    pub fn replicate(&self, factor: u32) -> BuildingSpec {
        BuildingSpec {
            levels: self.levels * factor,
            ..self.clone()
        }
    }
}

/// A campus: buildings placed on a grid, with entry doors connected
/// through an `Outdoor` partition (inducing the paper's D2D edges between
/// entry doors of different buildings). A single-building campus with
/// `outdoor: false` produces exterior entry doors instead.
#[derive(Debug, Clone, PartialEq)]
pub struct CampusSpec {
    pub buildings: Vec<BuildingSpec>,
    /// Connect buildings through an outdoor partition; otherwise entry
    /// doors are exterior.
    pub outdoor: bool,
    /// Seed for the small random choices (extra doors).
    pub seed: u64,
}

impl CampusSpec {
    pub fn single(building: BuildingSpec) -> Self {
        CampusSpec {
            buildings: vec![building],
            outdoor: false,
            seed: 0x1d008,
        }
    }

    /// Replicate every building (the "-2" datasets of Table 2).
    pub fn replicate(&self, factor: u32) -> CampusSpec {
        CampusSpec {
            buildings: self.buildings.iter().map(|b| b.replicate(factor)).collect(),
            outdoor: self.outdoor,
            seed: self.seed,
        }
    }

    /// Generate the venue.
    pub fn build(&self) -> Venue {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut vb = VenueBuilder::new();

        // Campus-wide outdoor partition first, so building entries can
        // reference it.
        let outdoor = if self.outdoor {
            let od = vb.add_partition(
                PartitionKind::Outdoor,
                Rect::new(-50.0, -50.0, 10_000.0, 10_000.0, 0),
            );
            Some(od)
        } else {
            None
        };

        let mut ox = 0.0f64;
        for spec in &self.buildings {
            let footprint = generate_building(&mut vb, spec, ox, 0.0, outdoor, &mut rng);
            ox += footprint + 30.0; // 30 m outdoor gap between buildings
        }

        if let Some(od) = outdoor {
            // A campus gate: exterior door of the outdoor space.
            vb.add_exterior_door(Point::new(-50.0, 0.0, 0), od);
        }

        vb.build().expect("generated venue must be valid")
    }
}

/// Emit one building into `vb`; returns its footprint width (for campus
/// placement). `ox`/`oy` position the building; entry doors connect to
/// `outdoor` if given, else they are exterior.
fn generate_building(
    vb: &mut VenueBuilder,
    spec: &BuildingSpec,
    ox: f64,
    oy: f64,
    outdoor: Option<PartitionId>,
    rng: &mut StdRng,
) -> f64 {
    let h = spec.hallways_per_level.max(1);
    let rooms_per_hall = spec.rooms_per_level.div_ceil(h);
    let rooms_per_side = rooms_per_hall.div_ceil(2).max(1);
    let corridor_len = rooms_per_side as f64 * spec.room_width;
    let block_h = 2.0 * spec.room_depth + spec.hall_width + 2.0;

    // hallway_ids[level][j] = corridor j on that level.
    let mut hallway_ids: Vec<Vec<PartitionId>> = Vec::with_capacity(spec.levels as usize);

    for level in 0..spec.levels as i32 {
        let mut level_halls = Vec::with_capacity(h as usize);
        let mut rooms_left = spec.rooms_per_level;
        for j in 0..h {
            let y0 = oy + j as f64 * block_h;
            let hall_rect = Rect::new(
                ox,
                y0 + spec.room_depth,
                ox + corridor_len,
                y0 + spec.room_depth + spec.hall_width,
                level,
            );
            let hall = vb.add_partition(PartitionKind::Hallway, hall_rect);
            level_halls.push(hall);

            // Rooms on both sides of the corridor.
            let this_hall_rooms = rooms_left.min(rooms_per_hall);
            rooms_left -= this_hall_rooms;
            let mut prev_room: Option<(PartitionId, f64, bool)> = None;
            for r in 0..this_hall_rooms {
                let side_south = r % 2 == 0;
                let i = (r / 2) as f64;
                let (ry0, ry1, door_y) = if side_south {
                    (y0, y0 + spec.room_depth, y0 + spec.room_depth)
                } else {
                    (
                        y0 + spec.room_depth + spec.hall_width,
                        y0 + 2.0 * spec.room_depth + spec.hall_width,
                        y0 + spec.room_depth + spec.hall_width,
                    )
                };
                let rx0 = ox + i * spec.room_width;
                let room = vb.add_partition(
                    PartitionKind::Room,
                    Rect::new(rx0, ry0, rx0 + spec.room_width, ry1, level),
                );
                vb.add_door(
                    Point::new(rx0 + spec.room_width / 2.0, door_y, level),
                    room,
                    Some(hall),
                );
                // Occasionally a second door into the previous room on the
                // same side (makes it a 2-door general partition).
                if let Some((prev, prev_x, prev_south)) = prev_room {
                    if prev_south == side_south
                        && (rx0 - prev_x).abs() <= spec.room_width + 1e-9
                        && rng.gen_bool(spec.extra_door_frac)
                    {
                        let mid_y = (ry0 + ry1) / 2.0;
                        vb.add_door(Point::new(rx0, mid_y, level), prev, Some(room));
                    }
                }
                prev_room = Some((room, rx0, side_south));
            }
        }

        // Join corridors of this level with doors at both ends. Corridor j
        // is centred at y0(j) + room_depth + hall_width / 2.
        let hall_center_y =
            |j: usize| oy + j as f64 * block_h + spec.room_depth + spec.hall_width / 2.0;
        for (j, w) in level_halls.windows(2).enumerate() {
            let (a, b) = (w[0], w[1]);
            let ymid = (hall_center_y(j) + hall_center_y(j + 1)) / 2.0;
            vb.add_door(Point::new(ox, ymid, level), a, Some(b));
            vb.add_door(Point::new(ox + corridor_len, ymid, level), a, Some(b));
        }

        hallway_ids.push(level_halls);
    }

    // Staircases between consecutive levels (attached near the west end of
    // the first corridor, spread along x when several per level).
    for level in 0..spec.levels.saturating_sub(1) as i32 {
        for s in 0..spec.stairs_per_level {
            let x = ox + 1.0 + s as f64 * 3.0;
            let y = oy + spec.room_depth + spec.hall_width / 2.0;
            let stair = vb.add_partition(
                PartitionKind::Staircase,
                Rect::new(x - 1.0, y - 1.0, x + 1.0, y + 1.0, level),
            );
            vb.add_door(
                Point::new(x, y, level),
                stair,
                Some(hallway_ids[level as usize][0]),
            );
            vb.add_door(
                Point::new(x, y, level + 1),
                stair,
                Some(hallway_ids[level as usize + 1][0]),
            );
        }
    }

    // Lift shafts spanning all levels: one general partition per
    // consecutive-floor pair (§2).
    for l in 0..spec.lifts {
        let x = ox + corridor_len - 1.0 - l as f64 * 3.0;
        let y = oy + spec.room_depth + spec.hall_width / 2.0;
        for level in 0..spec.levels.saturating_sub(1) as i32 {
            let seg = vb.add_partition(
                PartitionKind::Lift,
                Rect::new(x - 1.0, y - 1.0, x + 1.0, y + 1.0, level),
            );
            vb.add_door(
                Point::new(x, y, level),
                seg,
                Some(hallway_ids[level as usize][0]),
            );
            vb.add_door(
                Point::new(x, y, level + 1),
                seg,
                Some(hallway_ids[level as usize + 1][0]),
            );
        }
    }

    // Ground-floor entry at the west end of the first corridor.
    let entry_pos = Point::new(ox, oy + spec.room_depth + spec.hall_width / 2.0, 0);
    let ground_hall = hallway_ids[0][0];
    match outdoor {
        Some(od) => {
            vb.add_door(entry_pos, ground_hall, Some(od));
        }
        None => {
            vb.add_exterior_door(entry_pos, ground_hall);
        }
    }

    corridor_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_model::PartitionClass;

    #[test]
    fn default_building_is_valid_and_connected() {
        let venue = CampusSpec::single(BuildingSpec::default()).build();
        let stats = venue.stats();
        assert!(stats.doors > 100);
        assert_eq!(stats.levels, 3);
        // One connected component: every door reachable.
        assert_eq!(venue.d2d().connected_components().len(), 1);
    }

    #[test]
    fn corridors_are_hallway_class() {
        let venue = CampusSpec::single(BuildingSpec::default()).build();
        let hallways = venue
            .partitions()
            .iter()
            .filter(|p| p.kind == PartitionKind::Hallway)
            .count();
        // 2 corridors x 3 levels
        assert_eq!(hallways, 6);
        for p in venue.partitions() {
            if p.kind == PartitionKind::Hallway {
                assert_eq!(venue.class(p.id), PartitionClass::Hallway);
            }
            if p.kind == PartitionKind::Staircase || p.kind == PartitionKind::Lift {
                assert_eq!(p.num_doors(), 2, "stair/lift segments have two doors");
                assert_eq!(venue.class(p.id), PartitionClass::General);
            }
        }
    }

    #[test]
    fn replication_doubles_scale() {
        let base = CampusSpec::single(BuildingSpec::default());
        let v1 = base.build();
        let v2 = base.replicate(2).build();
        let (s1, s2) = (v1.stats(), v2.stats());
        assert_eq!(s2.levels, 2 * s1.levels);
        // Rooms double exactly; doors/edges double up to stairwell joins.
        let ratio = s2.doors as f64 / s1.doors as f64;
        assert!(ratio > 1.9 && ratio < 2.2, "door ratio {ratio}");
        assert_eq!(v2.d2d().connected_components().len(), 1);
    }

    #[test]
    fn campus_connects_buildings_via_outdoor() {
        let campus = CampusSpec {
            buildings: vec![BuildingSpec::default(), BuildingSpec::default()],
            outdoor: true,
            seed: 7,
        };
        let venue = campus.build();
        assert_eq!(venue.d2d().connected_components().len(), 1);
        let outdoor_parts = venue
            .partitions()
            .iter()
            .filter(|p| p.kind == PartitionKind::Outdoor)
            .count();
        assert_eq!(outdoor_parts, 1);
        // Outdoor partition holds one entry door per building + the gate.
        let od = venue
            .partitions()
            .iter()
            .find(|p| p.kind == PartitionKind::Outdoor)
            .unwrap();
        assert_eq!(od.num_doors(), 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = CampusSpec {
            buildings: vec![BuildingSpec {
                extra_door_frac: 0.5,
                ..BuildingSpec::default()
            }],
            outdoor: false,
            seed: 42,
        };
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.num_doors(), b.num_doors());
        assert_eq!(a.stats(), b.stats());
    }
}
