//! Synthetic indoor venue generation and query workloads.
//!
//! The paper evaluates on three real venues (Melbourne Central, the Menzies
//! building, Monash Clayton campus) whose floor plans were manually
//! digitised — data we do not have. Every algorithm under test, however,
//! consumes only the *topology* (partition/door incidence) and *metric*
//! (edge weights) of the indoor space, so this crate substitutes a
//! parametric generator that reproduces the structural properties the
//! paper's analysis identifies as performance-determining:
//!
//! * floor-per-floor hallways with large door counts (D2D out-degree up to
//!   ~400, versus 2–4 in road networks),
//! * rooms with one or two doors (no-through and general partitions),
//! * staircases/lifts modelled as two-door general partitions per floor
//!   pair (§2),
//! * multi-building campuses connected through outdoor space,
//! * replicated "-2" variants stacked vertically and joined by stairs
//!   (§4.1).
//!
//! Presets in [`presets`] are calibrated so that door / partition / D2D
//! edge counts track the paper's Table 2.

mod building;
pub mod presets;
mod random;
pub mod workload;

pub use building::{BuildingSpec, CampusSpec};
pub use random::{random_campus_spec, random_venue};
