//! Dataset presets calibrated against Table 2 of the paper.
//!
//! | Dataset | paper doors | paper rooms | paper edges |
//! |---------|-------------|-------------|-------------|
//! | MC      | 299         | 297         | 8,466       |
//! | MC-2    | 600         | 597         | 16,933      |
//! | Men     | 1,368       | 1,306       | 56,035      |
//! | Men-2   | 2,738       | 2,613       | 112,114     |
//! | CL      | 41,392      | 41,100      | 6,700,272   |
//! | CL-2    | 83,138      | 82,540      | 13,400,884  |
//!
//! Generated counts land within a few percent of these (asserted by the
//! `calibration` tests below; exact measured values are recorded in
//! EXPERIMENTS.md). `clayton_lite` is a reduced 8-building campus used at
//! `--scale small` so that every experiment — including the ones the paper
//! could only run on the full campus — always completes quickly.

use crate::building::{BuildingSpec, CampusSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Melbourne Central shopping centre: 7 levels, ~42 shops per level along
/// two corridors.
pub fn melbourne_central() -> CampusSpec {
    CampusSpec::single(BuildingSpec {
        levels: 7,
        rooms_per_level: 40,
        hallways_per_level: 2,
        extra_door_frac: 0.02,
        stairs_per_level: 1,
        lifts: 1,
        ..BuildingSpec::default()
    })
}

/// MC-2: Melbourne Central replicated on top of itself (§4.1).
pub fn melbourne_central_2() -> CampusSpec {
    melbourne_central().replicate(2)
}

/// Menzies building: 14 levels, ~93 rooms per level along three corridors.
pub fn menzies() -> CampusSpec {
    CampusSpec::single(BuildingSpec {
        levels: 14,
        rooms_per_level: 91,
        hallways_per_level: 3,
        extra_door_frac: 0.02,
        stairs_per_level: 1,
        lifts: 1,
        ..BuildingSpec::default()
    })
}

/// Men-2: Menzies replicated (§4.1).
pub fn menzies_2() -> CampusSpec {
    menzies().replicate(2)
}

/// Clayton campus: 71 buildings of varying size connected through outdoor
/// space. Building sizes are drawn (deterministically) so the campus has
/// ~41k rooms / ~6.7M D2D arcs, with several large open "car park"
/// buildings contributing the paper's out-degree-~400 hallways.
pub fn clayton() -> CampusSpec {
    clayton_sized(71, 0xC1A)
}

/// CL-2: every Clayton building replicated (§4.1).
pub fn clayton_2() -> CampusSpec {
    clayton().replicate(2)
}

/// A reduced Clayton (8 buildings, same building mix) for fast runs.
pub fn clayton_lite() -> CampusSpec {
    clayton_sized(8, 0xC1A)
}

/// CL-lite replicated.
pub fn clayton_lite_2() -> CampusSpec {
    clayton_lite().replicate(2)
}

fn clayton_sized(buildings: usize, seed: u64) -> CampusSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut specs = Vec::with_capacity(buildings);
    for i in 0..buildings {
        // Every 12th building is a multilevel car park: few large open
        // levels with very many entrances (the max-out-degree hallways).
        let spec = if i % 12 == 5 {
            BuildingSpec {
                levels: rng.gen_range(2..=4),
                rooms_per_level: rng.gen_range(320..=400),
                hallways_per_level: 1,
                extra_door_frac: 0.0,
                stairs_per_level: 2,
                lifts: 0,
                ..BuildingSpec::default()
            }
        } else {
            BuildingSpec {
                levels: rng.gen_range(3..=10),
                rooms_per_level: rng.gen_range(60..=150),
                hallways_per_level: 1,
                extra_door_frac: 0.02,
                stairs_per_level: 1,
                lifts: 1,
                ..BuildingSpec::default()
            }
        };
        specs.push(spec);
    }
    CampusSpec {
        buildings: specs,
        outdoor: true,
        seed,
    }
}

/// All six Table 2 datasets as `(name, spec)` pairs, smallest first.
pub fn table2_datasets() -> Vec<(&'static str, CampusSpec)> {
    vec![
        ("MC", melbourne_central()),
        ("MC-2", melbourne_central_2()),
        ("Men", menzies()),
        ("Men-2", menzies_2()),
        ("CL", clayton()),
        ("CL-2", clayton_2()),
    ]
}

/// The four small datasets plus CL-lite variants: the default benchmark
/// suite (`--scale small`).
pub fn small_scale_datasets() -> Vec<(&'static str, CampusSpec)> {
    vec![
        ("MC", melbourne_central()),
        ("MC-2", melbourne_central_2()),
        ("Men", menzies()),
        ("Men-2", menzies_2()),
        ("CL-lite", clayton_lite()),
        ("CL-lite-2", clayton_lite_2()),
    ]
}

#[cfg(test)]
mod calibration {
    use super::*;

    fn assert_within(name: &str, got: usize, want: usize, tol: f64) {
        let lo = (want as f64 * (1.0 - tol)) as usize;
        let hi = (want as f64 * (1.0 + tol)) as usize;
        assert!(
            (lo..=hi).contains(&got),
            "{name}: got {got}, paper {want} (tolerance {:.0}%)",
            tol * 100.0
        );
    }

    #[test]
    fn mc_matches_table2() {
        let s = melbourne_central().build().stats();
        assert_within("MC doors", s.doors, 299, 0.10);
        assert_within("MC partitions", s.partitions, 297, 0.10);
        assert_within("MC edges", s.d2d_edges, 8466, 0.25);
    }

    #[test]
    fn mc2_doubles() {
        let s = melbourne_central_2().build().stats();
        assert_within("MC-2 doors", s.doors, 600, 0.10);
        assert_within("MC-2 edges", s.d2d_edges, 16933, 0.25);
    }

    #[test]
    fn menzies_matches_table2() {
        let s = menzies().build().stats();
        assert_within("Men doors", s.doors, 1368, 0.10);
        assert_within("Men partitions", s.partitions, 1306, 0.10);
        assert_within("Men edges", s.d2d_edges, 56035, 0.25);
    }

    #[test]
    fn clayton_lite_is_campus() {
        let v = clayton_lite().build();
        let s = v.stats();
        assert!(s.doors > 2_000, "CL-lite doors {}", s.doors);
        assert_eq!(v.d2d().connected_components().len(), 1);
        // The car-park mix must produce at least one very wide hallway.
        assert!(s.max_out_degree > 300, "max degree {}", s.max_out_degree);
    }
}
