//! Randomised small venues for property-based testing.

use crate::building::{BuildingSpec, CampusSpec};
use indoor_model::Venue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random small campus spec: 1–3 buildings, 1–4 levels, 3–25 rooms per
/// level, varying corridor counts, extra-door fractions, stairs and lifts.
///
/// Every structural feature of the generator is exercised somewhere in the
/// seed space: multi-hallway levels, no-lift buildings, outdoor campuses,
/// heavy second-door venues (which create 2-door general rooms and cycles).
pub fn random_campus_spec(seed: u64) -> CampusSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_buildings = rng.gen_range(1..=3);
    let buildings = (0..n_buildings)
        .map(|_| BuildingSpec {
            levels: rng.gen_range(1..=4),
            rooms_per_level: rng.gen_range(3..=25),
            hallways_per_level: rng.gen_range(1..=3),
            extra_door_frac: *[0.0, 0.1, 0.5].get(rng.gen_range(0..3)).unwrap(),
            stairs_per_level: rng.gen_range(1..=2),
            lifts: rng.gen_range(0..=1),
            ..BuildingSpec::default()
        })
        .collect::<Vec<_>>();
    CampusSpec {
        outdoor: n_buildings > 1 || rng.gen_bool(0.3),
        buildings,
        seed: rng.gen(),
    }
}

/// Convenience: build the random venue for `seed` directly.
pub fn random_venue(seed: u64) -> Venue {
    random_campus_spec(seed).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_venues_are_valid_and_connected(seed in 0u64..10_000) {
            let venue = random_venue(seed);
            prop_assert!(venue.num_doors() >= 2);
            prop_assert_eq!(venue.d2d().connected_components().len(), 1,
                "venue for seed {} is disconnected", seed);
            // Every door references existing partitions and vice versa.
            for door in venue.doors() {
                for p in door.partition_ids() {
                    prop_assert!(venue.partition(p).doors.contains(&door.id));
                }
            }
            for part in venue.partitions() {
                for &d in &part.doors {
                    prop_assert!(venue.door(d).partition_ids().any(|p| p == part.id));
                }
            }
        }

        #[test]
        fn d2d_weights_are_finite_nonnegative(seed in 0u64..2_000) {
            let venue = random_venue(seed);
            let g = venue.d2d();
            for v in 0..g.num_vertices() as u32 {
                for (_, w) in g.neighbors(v) {
                    prop_assert!(w.is_finite() && w >= 0.0);
                }
            }
        }
    }
}
