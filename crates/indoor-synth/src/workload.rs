//! Query workload generation (§4.1 of the paper).
//!
//! * 10,000 random source/target pairs for shortest distance/path,
//! * 10,000 random query points for kNN/range,
//! * object sets of 10/50/100/500 objects placed uniformly at random,
//! * distance-quintile pair buckets (Q1–Q5) for Fig. 10(b).

use indoor_model::{IndoorPoint, QueryRequest, Venue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniformly random point: uniform partition choice, then a uniform
/// position inside the partition extent (matching "randomly generated in
/// the indoor space", §4.1, under the convex-partition model).
pub fn random_point(venue: &Venue, rng: &mut StdRng) -> IndoorPoint {
    let pid = venue.partitions()[rng.gen_range(0..venue.num_partitions())].id;
    random_point_in(venue, pid, rng)
}

/// A uniformly random point inside a given partition.
pub fn random_point_in(
    venue: &Venue,
    pid: indoor_model::PartitionId,
    rng: &mut StdRng,
) -> IndoorPoint {
    let ext = venue.partition(pid).extent;
    IndoorPoint::new(pid, ext.lerp(rng.gen::<f64>(), rng.gen::<f64>()))
}

/// `n` random query points.
pub fn query_points(venue: &Venue, n: usize, seed: u64) -> Vec<IndoorPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| random_point(venue, &mut rng)).collect()
}

/// `n` random source/target pairs.
pub fn query_pairs(venue: &Venue, n: usize, seed: u64) -> Vec<(IndoorPoint, IndoorPoint)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (random_point(venue, &mut rng), random_point(venue, &mut rng)))
        .collect()
}

/// `n` objects placed uniformly at random (the paper's synthetic object
/// sets; washrooms in the real data).
pub fn place_objects(venue: &Venue, n: usize, seed: u64) -> Vec<IndoorPoint> {
    query_points(venue, n, seed ^ 0x0B7EC7)
}

/// The demo keyword labelling used by benches, tests and examples:
/// object `i` carries `[keyword]`, `["exit", keyword]` or `["exit"]`
/// cycling by `i % 3`, so two thirds of the objects match `keyword` and
/// every venue has some objects a keyword query must skip.
pub fn cycling_labels(objects: &[IndoorPoint], keyword: &str) -> Vec<(IndoorPoint, Vec<String>)> {
    objects
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let labels = match i % 3 {
                0 => vec![keyword.to_string()],
                1 => vec!["exit".to_string(), keyword.to_string()],
                _ => vec!["exit".to_string()],
            };
            (*p, labels)
        })
        .collect()
}

/// Seeded Fisher–Yates shuffle (deterministic per seed, like every other
/// workload generator here).
pub fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// A shuffled **heterogeneous** request batch: `n_per_kind` of each query
/// kind (kNN, range, keyword-kNN, shortest distance, shortest path),
/// interleaved by a seeded shuffle so no homogeneous run survives — the
/// mixed mall-directory workload (kNN lookups between evacuation-route
/// path queries) that the typed `QueryRequest` API exists to express.
pub fn mixed_requests(
    venue: &Venue,
    n_per_kind: usize,
    k: usize,
    radius: f64,
    keyword: &str,
    seed: u64,
) -> Vec<QueryRequest> {
    let points = query_points(venue, n_per_kind, seed ^ 0x31);
    let kw_points = query_points(venue, n_per_kind, seed ^ 0x32);
    let pairs = query_pairs(venue, n_per_kind, seed ^ 0x33);
    let keyword: std::sync::Arc<str> = keyword.into();
    let mut reqs = Vec::with_capacity(n_per_kind * 5);
    for q in &points {
        reqs.push(QueryRequest::Knn { q: *q, k });
        reqs.push(QueryRequest::Range { q: *q, radius });
    }
    for q in &kw_points {
        reqs.push(QueryRequest::KnnKeyword {
            q: *q,
            k,
            keyword: keyword.clone(),
        });
    }
    for &(s, t) in &pairs {
        reqs.push(QueryRequest::ShortestDistance { s, t });
        reqs.push(QueryRequest::ShortestPath { s, t });
    }
    shuffle(&mut reqs, seed ^ 0x34);
    reqs
}

/// Fig. 10(b) workload: the distance range `[0, dmax]` is split into five
/// equal intervals Q1..Q5 and random pairs are bucketed by their true
/// distance. `dmax` is estimated as the maximum distance over the sampled
/// pairs (the paper takes the building diameter; the estimate converges to
/// it for the sample sizes used).
///
/// `sd` is a shortest-distance oracle, typically a VIP-tree closure.
/// Returns five buckets of up to `per_bucket` pairs each.
pub fn distance_quintile_pairs(
    venue: &Venue,
    per_bucket: usize,
    seed: u64,
    mut sd: impl FnMut(&IndoorPoint, &IndoorPoint) -> Option<f64>,
) -> [Vec<(IndoorPoint, IndoorPoint)>; 5] {
    let mut rng = StdRng::seed_from_u64(seed);
    // Sample a pool, compute distances, derive dmax, then bucket.
    let pool_size = per_bucket * 40;
    let mut pool = Vec::with_capacity(pool_size);
    let mut dmax = 0.0f64;
    for _ in 0..pool_size {
        let s = random_point(venue, &mut rng);
        let t = random_point(venue, &mut rng);
        if let Some(d) = sd(&s, &t) {
            dmax = dmax.max(d);
            pool.push((s, t, d));
        }
    }
    let mut buckets: [Vec<(IndoorPoint, IndoorPoint)>; 5] = Default::default();
    if dmax <= 0.0 {
        return buckets;
    }
    for (s, t, d) in pool {
        let q = ((d / dmax * 5.0).floor() as usize).min(4);
        if buckets[q].len() < per_bucket {
            buckets[q].push((s, t));
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_venue;

    #[test]
    fn points_lie_inside_their_partition() {
        let venue = random_venue(11);
        for p in query_points(&venue, 200, 3) {
            let ext = venue.partition(p.partition).extent;
            assert!(ext.contains(&p.position), "{p:?} outside {ext:?}");
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let venue = random_venue(11);
        assert_eq!(query_pairs(&venue, 50, 9), query_pairs(&venue, 50, 9));
        assert_eq!(place_objects(&venue, 10, 9), place_objects(&venue, 10, 9));
        assert_ne!(query_points(&venue, 50, 1), query_points(&venue, 50, 2));
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        shuffle(&mut a, 7);
        shuffle(&mut b, 7);
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>(), "permutation");
        let mut c: Vec<usize> = (0..50).collect();
        shuffle(&mut c, 8);
        assert_ne!(a, c, "different seed, different order");
    }

    #[test]
    fn mixed_requests_cover_every_kind() {
        use indoor_model::QueryKind;
        let venue = random_venue(11);
        let reqs = mixed_requests(&venue, 4, 3, 90.0, "cafe", 5);
        assert_eq!(reqs.len(), 20);
        for kind in QueryKind::ALL {
            assert_eq!(
                reqs.iter().filter(|r| r.kind() == kind).count(),
                4,
                "kind {kind}"
            );
        }
        assert_eq!(reqs, mixed_requests(&venue, 4, 3, 90.0, "cafe", 5));
    }

    #[test]
    fn quintiles_partition_by_distance() {
        let venue = random_venue(11);
        // Straight-line oracle is enough to test the bucketing logic.
        let buckets =
            distance_quintile_pairs(&venue, 5, 17, |s, t| Some(s.position.distance(&t.position)));
        let mut last_max = 0.0;
        for b in &buckets {
            let mut bucket_max: f64 = 0.0;
            for (s, t) in b {
                let d = s.position.distance(&t.position);
                bucket_max = bucket_max.max(d);
                assert!(d >= last_max * 0.0); // distances non-negative
            }
            if bucket_max > 0.0 {
                assert!(bucket_max >= last_max);
                last_max = bucket_max;
            }
        }
        assert!(buckets.iter().any(|b| !b.is_empty()));
    }
}
