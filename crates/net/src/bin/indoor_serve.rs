//! Standalone server binary.
//!
//! ```sh
//! # Durable: recover (or create) a service under DIR and serve it.
//! indoor_serve --addr 127.0.0.1:7171 --data-dir DIR
//!
//! # Volatile, with synthesised venues for smoke tests and benches:
//! indoor_serve --addr 127.0.0.1:0 --venues 2 --objects 16 --seed 42
//! ```
//!
//! Prints `listening on <addr>` (the resolved address — port 0 picks an
//! ephemeral one) on stdout, then serves until stdin closes or a line
//! reading `stop` arrives — the shutdown idiom that needs no signal
//! handling and works the same under CI, a terminal, and a pipe.
//! Replication followers point `indoor_serve --follow LEADER_ADDR` at a
//! durable leader: every venue the leader carries is subscribed from LSN
//! 0 and tailed live, and this process serves the replicas read-only
//! over its own listener.

use indoor_net::{follower, NetServer};
use indoor_synth::{random_venue, workload};
use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vip_tree::{AdmissionConfig, IndoorService, OverloadPolicy, ShardConfig, SyncPolicy, VenueId};

struct Args {
    addr: String,
    data_dir: Option<String>,
    follow: Option<String>,
    venues: usize,
    objects: usize,
    seed: u64,
    max_in_flight: usize,
    policy: OverloadPolicy,
    sync: SyncPolicy,
    /// `--metrics SECS`: dump the telemetry exposition page to stderr
    /// every SECS seconds (0 = off). The same page a `Metrics` frame
    /// fetches over the wire.
    metrics_every: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7171".into(),
        data_dir: None,
        follow: None,
        venues: 0,
        objects: 16,
        seed: 42,
        max_in_flight: 0,
        policy: OverloadPolicy::Shed,
        sync: SyncPolicy::Never,
        metrics_every: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value after {a}"))
        };
        match a.as_str() {
            "--addr" => args.addr = val(),
            "--data-dir" => args.data_dir = Some(val()),
            "--follow" => args.follow = Some(val()),
            "--venues" => args.venues = val().parse().expect("bad --venues"),
            "--objects" => args.objects = val().parse().expect("bad --objects"),
            "--seed" => args.seed = val().parse().expect("bad --seed"),
            "--max-in-flight" => args.max_in_flight = val().parse().expect("bad --max-in-flight"),
            "--metrics" => args.metrics_every = val().parse().expect("bad --metrics"),
            "--policy" => {
                args.policy = match val().as_str() {
                    "shed" => OverloadPolicy::Shed,
                    "block" => OverloadPolicy::Block {
                        timeout: Duration::from_millis(50),
                    },
                    other => panic!("--policy must be shed or block, got {other}"),
                }
            }
            "--sync" => {
                let v = val();
                args.sync = match v.as_str() {
                    "never" => SyncPolicy::Never,
                    "per-append" => SyncPolicy::PerAppend,
                    other => match other.split_once(':') {
                        Some(("group-commit", ms)) => SyncPolicy::GroupCommit {
                            max_delay: Duration::from_millis(ms.parse().expect("bad delay")),
                        },
                        Some(("every", n)) => SyncPolicy::EveryN {
                            n: n.parse().expect("bad count"),
                        },
                        _ => panic!(
                            "--sync must be never, per-append, group-commit:MS or every:N, \
                             got {other}"
                        ),
                    },
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: indoor_serve [--addr A] [--data-dir DIR | --follow LEADER] \
                     [--venues N --objects M --seed S] [--max-in-flight K --policy shed|block] \
                     [--sync never|per-append|group-commit:MS|every:N] [--metrics SECS]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other} (try --help)"),
        }
    }
    args
}

fn synthesize(service: &IndoorService, args: &Args) {
    for i in 0..args.venues {
        let seed = args.seed + i as u64;
        let venue = Arc::new(random_venue(seed));
        let objects = workload::place_objects(&venue, args.objects, seed);
        let keywords = workload::cycling_labels(&objects, "atm");
        let id = service
            .add_venue(
                venue,
                ShardConfig {
                    objects,
                    keywords,
                    admission: AdmissionConfig {
                        max_in_flight: args.max_in_flight,
                        policy: args.policy,
                    },
                    sync: args.sync,
                    ..ShardConfig::default()
                },
            )
            .expect("synthesised venue builds");
        eprintln!("venue {} ready (seed {seed})", id.index());
    }
}

fn main() {
    let args = parse_args();
    let service = Arc::new(match &args.data_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("create data dir");
            IndoorService::open(dir).expect("recover service from data dir")
        }
        None => IndoorService::new(),
    });
    if service.venue_count() == 0 && args.venues > 0 {
        synthesize(&service, &args);
    }

    // Follower mode: subscribe to every venue the leader carries and
    // tail them on background threads while serving the replicas.
    let stop = Arc::new(AtomicBool::new(false));
    let mut tails = Vec::new();
    if let Some(leader) = &args.follow {
        assert!(
            args.data_dir.is_none(),
            "--follow requires a volatile service (followers must not re-journal)"
        );
        let mut probe = indoor_net::NetClient::connect(leader).expect("connect to leader");
        let shards = probe.stats().expect("leader stats").shards;
        drop(probe);
        for shard in shards {
            let venue = VenueId::from(shard.venue);
            let mut rs =
                follower::subscribe(leader, venue, 0).expect("leader serves suffix from LSN 0");
            let report = rs.catch_up(&service).expect("catch-up applies cleanly");
            eprintln!(
                "venue {} caught up: applied {}, version {} (head {})",
                venue.index(),
                report.applied,
                report.version,
                report.head
            );
            let service = service.clone();
            let stop = stop.clone();
            tails.push(std::thread::spawn(move || {
                let _ = rs.tail(&service, &stop);
            }));
        }
    }

    // Periodic telemetry dump: the same exposition page a `Metrics`
    // frame fetches, to stderr so the stdout protocol line stays clean.
    let mut dumper = None;
    if args.metrics_every > 0 {
        let service = service.clone();
        let stop = stop.clone();
        let every = Duration::from_secs(args.metrics_every);
        dumper = Some(std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(every);
                if stop.load(Ordering::Acquire) {
                    break;
                }
                eprintln!(
                    "{}",
                    indoor_model::metrics::encode_text(&service.metrics_snapshot())
                );
            }
        }));
    }

    let mut server = NetServer::bind(service, args.addr.as_str()).expect("bind listener");
    println!("listening on {}", server.local_addr());

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "stop" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    stop.store(true, Ordering::Release);
    for t in tails {
        let _ = t.join();
    }
    if let Some(t) = dumper {
        let _ = t.join();
    }
    server.stop();
}
