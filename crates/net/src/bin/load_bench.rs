//! Open- and closed-loop load generator over the wire protocol, with a
//! committed regression baseline (`BENCH_net.json`, gated by
//! `net_check`).
//!
//! ```sh
//! cargo run --release -p indoor-net --bin load_bench -- \
//!     --out /tmp/BENCH_net.json [--requests 300] [--qps 3000] [--seed 42]
//! ```
//!
//! The matrix: closed-loop cells sweep connections × pipeline depth ×
//! overload policy (shed vs block) against an in-process loopback
//! server; one open-loop cell issues on a fixed arrival schedule and
//! measures latency **from the scheduled send time** (the
//! coordinated-omission correction — a stalled reply inflates every
//! latency behind it, as it would for real arrivals); one flood cell
//! pushes pipeline depth far past a tiny admission capacity and asserts
//! the contract this front-end exists for: the gate sheds (`shed > 0`)
//! with typed per-request errors while **every connection survives and
//! every request gets a reply**.
//!
//! Each cell reports p50/p99/p999/max (µs) and throughput; `net_check`
//! gates p50 per cell against the committed baseline and sanity-checks
//! the tail ordering of the open-loop cell. Latencies land in one
//! lock-free telemetry histogram per cell — every reply is a sample
//! shared across connection threads without a mutex, and p999/max come
//! from the full population, not a sorted per-connection vector.

use indoor_model::QueryRequest;
use indoor_net::{NetClient, NetServer};
use indoor_synth::{random_venue, workload};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vip_tree::telemetry::{HistSnapshot, Histogram};
use vip_tree::{AdmissionConfig, IndoorService, OverloadPolicy, RetryPolicy, ShardConfig};

struct Args {
    out: String,
    seed: u64,
    /// Requests per connection in every cell.
    requests: usize,
    /// Per-connection arrival rate of the open-loop cell.
    qps: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_net.json".into(),
        seed: 42,
        requests: 300,
        qps: 3000.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value after {a}"))
        };
        match a.as_str() {
            "--out" => args.out = val(),
            "--seed" => args.seed = val().parse().expect("bad --seed"),
            "--requests" => args.requests = val().parse().expect("bad --requests"),
            "--qps" => args.qps = val().parse().expect("bad --qps"),
            "--help" | "-h" => {
                println!("usage: load_bench [--out PATH] [--seed S] [--requests N] [--qps Q]");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

#[derive(Debug, Default)]
struct CellCounts {
    answered: u64,
    shed: u64,
}

impl CellCounts {
    fn merge(&mut self, other: CellCounts) {
        self.answered += other.answered;
        self.shed += other.shed;
    }
}

struct Cell {
    key: String,
    requests: u64,
    answered: u64,
    shed: u64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
    qps: f64,
}

fn finish(
    key: String,
    requests: u64,
    counts: CellCounts,
    lat_ns: HistSnapshot,
    wall: Duration,
) -> Cell {
    Cell {
        key,
        requests,
        answered: counts.answered,
        shed: counts.shed,
        p50_us: lat_ns.p50() as f64 / 1e3,
        p99_us: lat_ns.p99() as f64 / 1e3,
        p999_us: lat_ns.p999() as f64 / 1e3,
        max_us: lat_ns.max() as f64 / 1e3,
        qps: counts.answered as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// One closed-loop connection: keep `depth` queries in flight, measure
/// send→reply. Shed/timeout replies count, not crash — the server
/// degrades per-request.
fn closed_loop(
    addr: std::net::SocketAddr,
    venue: u32,
    reqs: &[QueryRequest],
    lat: &Histogram,
    depth: usize,
) -> CellCounts {
    let mut client = NetClient::connect(addr)
        .expect("connect")
        .with_retry(RetryPolicy::fail_fast());
    let mut counts = CellCounts::default();
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();
    let mut sent = 0usize;
    while sent < reqs.len() || !in_flight.is_empty() {
        while in_flight.len() < depth && sent < reqs.len() {
            let id = client
                .send_query(venue, reqs[sent].clone())
                .expect("send survives overload");
            in_flight.insert(id, Instant::now());
            sent += 1;
        }
        let (id, result) = client.recv_answer().expect("connection survives overload");
        let t0 = in_flight.remove(&id).expect("reply matches a sent id");
        match result {
            Ok(_) => {
                counts.answered += 1;
                lat.record(t0.elapsed().as_nanos() as u64);
            }
            Err(e) if e.is_retryable() => counts.shed += 1,
            Err(e) => panic!("non-transient server error: {e}"),
        }
    }
    counts
}

/// One open-loop connection: send on a fixed schedule regardless of
/// replies; latency from the *scheduled* send time.
fn open_loop(
    addr: std::net::SocketAddr,
    venue: u32,
    reqs: &[QueryRequest],
    lat: &Histogram,
    qps: f64,
) -> CellCounts {
    let mut client = NetClient::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_micros(200)))
        .expect("read timeout");
    let interval = Duration::from_secs_f64(1.0 / qps);
    let start = Instant::now();
    let mut counts = CellCounts::default();
    let mut scheduled: HashMap<u64, Instant> = HashMap::new();
    let mut next = 0usize;
    let mut done = 0usize;
    while done < reqs.len() {
        let now = Instant::now();
        while next < reqs.len() && now >= start + interval * next as u32 {
            let due = start + interval * next as u32;
            let id = client
                .send_query(venue, reqs[next].clone())
                .expect("send survives overload");
            scheduled.insert(id, due);
            next += 1;
        }
        match client
            .try_recv_answer()
            .expect("connection survives overload")
        {
            Some((id, result)) => {
                let due = scheduled.remove(&id).expect("reply matches a sent id");
                done += 1;
                match result {
                    Ok(_) => {
                        counts.answered += 1;
                        lat.record(due.elapsed().as_nanos() as u64);
                    }
                    Err(e) if e.is_retryable() => counts.shed += 1,
                    Err(e) => panic!("non-transient server error: {e}"),
                }
            }
            None => {
                if next < reqs.len() {
                    let due = start + interval * next as u32;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep((due - now).min(Duration::from_micros(100)));
                    }
                }
            }
        }
    }
    counts
}

fn run_cell(
    addr: std::net::SocketAddr,
    venue: u32,
    reqs: &[QueryRequest],
    conns: usize,
    mode: impl Fn(std::net::SocketAddr, u32, &[QueryRequest], &Histogram) -> CellCounts + Sync,
) -> (CellCounts, HistSnapshot, Duration) {
    let t0 = Instant::now();
    let lat = Histogram::new();
    let mut total = CellCounts::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|_| scope.spawn(|| mode(addr, venue, reqs, &lat)))
            .collect();
        for h in handles {
            total.merge(h.join().expect("connection thread"));
        }
    });
    (total, lat.snapshot(), t0.elapsed())
}

/// A loopback server over a fresh volatile service carrying one
/// synthesised venue under `admission`.
fn loopback(seed: u64, admission: AdmissionConfig) -> (NetServer, u32) {
    let service = Arc::new(IndoorService::new());
    let venue = Arc::new(random_venue(seed));
    let objects = workload::place_objects(&venue, 16, seed);
    let keywords = workload::cycling_labels(&objects, "atm");
    let id = service
        .add_venue(
            venue,
            ShardConfig {
                threads: 1,
                objects,
                keywords,
                admission,
                ..ShardConfig::default()
            },
        )
        .expect("bench venue builds");
    let server = NetServer::bind(service, "127.0.0.1:0").expect("bind loopback");
    (server, id.index() as u32)
}

fn main() {
    let args = parse_args();
    let venue_src = random_venue(args.seed);
    let reqs =
        workload::mixed_requests(&venue_src, args.requests / 4 + 1, 4, 60.0, "atm", args.seed);
    let reqs = &reqs[..args.requests.min(reqs.len())];
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut cells: Vec<Cell> = Vec::new();

    // Closed-loop matrix: connections × depth × overload policy, each
    // against a generous gate (the normal-operation cells).
    for (pname, policy) in [
        ("shed", OverloadPolicy::Shed),
        (
            "block",
            OverloadPolicy::Block {
                timeout: Duration::from_millis(20),
            },
        ),
    ] {
        let (server, venue) = loopback(
            args.seed,
            AdmissionConfig {
                max_in_flight: 64,
                policy,
            },
        );
        let addr = server.local_addr();
        for conns in [1usize, 2, 4] {
            for depth in [1usize, 4] {
                let (counts, lat, wall) = run_cell(addr, venue, reqs, conns, |a, v, r, h| {
                    closed_loop(a, v, r, h, depth)
                });
                let key = format!("(closed, {pname}, c{conns}, d{depth})");
                let cell = finish(key, (reqs.len() * conns) as u64, counts, lat, wall);
                println!(
                    "{:32} p50 {:8.1}us p99 {:8.1}us p999 {:8.1}us max {:8.1}us {:9.0} q/s shed {}",
                    cell.key,
                    cell.p50_us,
                    cell.p99_us,
                    cell.p999_us,
                    cell.max_us,
                    cell.qps,
                    cell.shed
                );
                cells.push(cell);
            }
        }
    }

    // Open-loop: fixed arrival schedule, latency from scheduled send.
    {
        let (server, venue) = loopback(
            args.seed,
            AdmissionConfig {
                max_in_flight: 64,
                policy: OverloadPolicy::Shed,
            },
        );
        let addr = server.local_addr();
        let qps = args.qps;
        let (counts, lat, wall) = run_cell(addr, venue, reqs, 2, |a, v, r, h| {
            open_loop(a, v, r, h, qps)
        });
        let cell = finish(
            format!("(open, shed, c2, q{})", qps as u64),
            (reqs.len() * 2) as u64,
            counts,
            lat,
            wall,
        );
        println!(
            "{:32} p50 {:8.1}us p99 {:8.1}us p999 {:8.1}us max {:8.1}us {:9.0} q/s shed {}",
            cell.key, cell.p50_us, cell.p99_us, cell.p999_us, cell.max_us, cell.qps, cell.shed
        );
        cells.push(cell);
    }

    // Flood: depth far past a tiny admission capacity. The acceptance
    // contract: the gate pushes back (shed > 0) with typed errors and
    // zero connection loss (every request resolves to answer or shed).
    {
        let (server, venue) = loopback(
            args.seed,
            AdmissionConfig {
                max_in_flight: 2,
                policy: OverloadPolicy::Shed,
            },
        );
        let addr = server.local_addr();
        let (counts, lat, wall) = run_cell(addr, venue, reqs, 4, |a, v, r, h| {
            closed_loop(a, v, r, h, 64)
        });
        let cell = finish(
            "(flood, shed, c4, d64)".to_string(),
            (reqs.len() * 4) as u64,
            counts,
            lat,
            wall,
        );
        println!(
            "{:32} p50 {:8.1}us p99 {:8.1}us p999 {:8.1}us max {:8.1}us {:9.0} q/s shed {}",
            cell.key, cell.p50_us, cell.p99_us, cell.p999_us, cell.max_us, cell.qps, cell.shed
        );
        assert!(
            cell.shed > 0,
            "flood cell must shed at depth 64 against capacity 2 — the admission gate is not \
             reaching the wire"
        );
        assert_eq!(
            cell.answered + cell.shed,
            cell.requests,
            "every flooded request must resolve to an answer or a typed shed — a lost request \
             means a dropped connection"
        );
        cells.push(cell);
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"net-serving\",\n");
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"requests_per_conn\": {},\n", args.requests));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"key\": \"{}\", \"requests\": {}, \"answered\": {}, \"shed\": {}, \
             \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}, \"max_us\": {:.3}, \
             \"qps\": {:.1}}}{}\n",
            c.key,
            c.requests,
            c.answered,
            c.shed,
            c.p50_us,
            c.p99_us,
            c.p999_us,
            c.max_us,
            c.qps,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&args.out, &out).expect("write bench json");
    println!("wrote {} ({} cells)", args.out, cells.len());
}
