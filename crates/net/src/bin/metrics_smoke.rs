//! CI smoke for the metrics surface: boot the real `indoor_serve`
//! binary with synthesised venues, push a burst of queries through a
//! `NetClient`, fetch the exposition page over the wire (`Metrics`
//! frame, not an in-process snapshot), and lint it.
//!
//! ```sh
//! cargo run --release -p indoor-net --bin metrics_smoke
//! ```
//!
//! This is deliberately a separate process pair: the in-process test
//! (`metrics_page_fetches_over_the_wire_and_lints_clean`) proves the
//! frame round-trip, while this proves the shipped binary wires the
//! same page — flags parsed, venues synthesised, listener printed.

use indoor_net::NetClient;
use indoor_synth::{random_venue, workload};
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

/// Gauges every live service must expose (service-level and per-venue);
/// a page missing one means a publish site was dropped, which the
/// structural lint alone cannot see.
const REQUIRED_GAUGES: &[&str] = &[
    "indoor_venues",
    "indoor_degraded_venues",
    "indoor_shard_epoch",
    "indoor_cached_entries",
    "indoor_in_flight",
    "indoor_replication_lag",
    "indoor_live_objects",
];

fn serve_binary() -> std::path::PathBuf {
    // Sibling binary in the same target directory as this one.
    let mut p = std::env::current_exe().expect("own path");
    p.pop();
    p.push(format!("indoor_serve{}", std::env::consts::EXE_SUFFIX));
    p
}

fn main() {
    let seed = 42u64;
    let mut child = Command::new(serve_binary())
        .args(["--addr", "127.0.0.1:0", "--venues", "2", "--seed", "42"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn indoor_serve (is the bin built? cargo build --release -p indoor-net)");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its listener")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().to_string();
        }
    };

    // Exercise the serving path so the latency histograms carry samples
    // and at least one engine trace fires (the first query on each
    // connection thread always traces).
    let venue_src = random_venue(seed);
    let reqs = workload::mixed_requests(&venue_src, 64, 4, 60.0, "atm", seed);
    let mut client = NetClient::connect(addr.as_str()).expect("connect to spawned server");
    for req in &reqs {
        client.query(0, req).expect("query answers");
    }
    let page = client.metrics().expect("metrics page over the wire");
    drop(client);

    let errors = indoor_model::metrics::lint_text(&page);
    assert!(
        errors.is_empty(),
        "exposition lint failed:\n{}\n--- page ---\n{page}",
        errors.join("\n")
    );
    for gauge in REQUIRED_GAUGES {
        assert!(
            page.lines().any(|l| l.starts_with(gauge)),
            "metrics page is missing gauge {gauge}:\n{page}"
        );
    }
    assert!(
        page.lines()
            .any(|l| l.starts_with("indoor_query_latency_us_count") && !l.ends_with(" 0")),
        "latency histogram never recorded:\n{page}"
    );

    writeln!(child.stdin.as_mut().expect("child stdin"), "stop").expect("send stop");
    let status = child.wait().expect("server exits");
    assert!(status.success(), "indoor_serve exited with {status}");
    println!(
        "metrics smoke ok: {} series lines fetched from {addr}, lint clean, all gauges present",
        page.lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .count()
    );
}
