//! The request/reply client.
//!
//! [`NetClient`] offers two styles over one connection:
//!
//! * **sequential calls** (`query`, `update_objects`, `stats`, …): send
//!   one request, wait for its reply. Transient server rejections
//!   ([`WireError::is_retryable`]) retry under the client's
//!   [`RetryPolicy`] — the wire mirror of the in-process convention the
//!   scenario lab uses.
//! * **pipelining** (`send_query` + `recv_answer`): fire any number of
//!   requests before reading a reply. Ids are client-assigned and echoed
//!   by the server, so replies match up regardless of how the server
//!   coalesced the work. This is the path the open-loop load generator
//!   drives.
//!
//! Pipelined retryable failures are *not* retried automatically — an
//! open-loop caller owns its schedule; it decides whether a shed request
//! is re-sent or counted and dropped.

use crate::NetError;
use indoor_model::frames::{Frame, FrameDecoder, WireError, WireServiceStats, NET_MAGIC};
use indoor_model::{
    IndoorPoint, ObjectDelta, ObjectUpdate, QueryRequest, QueryResponse, Venue, VenueId,
};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use vip_tree::{RetryPolicy, ServiceError, ShardConfig};

/// One pipelined reply: the request id it answers, and the answer or
/// the typed service error.
pub type Reply = (u64, Result<QueryResponse, WireError>);

/// One protocol connection. Not `Sync` — a connection is a serial byte
/// stream; use one client per thread (they are cheap).
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Replies read while waiting for a different id (pipelining).
    inbox: VecDeque<Frame>,
    next_id: u64,
    retry: RetryPolicy,
    buf: Vec<u8>,
}

impl NetClient {
    /// Connect and handshake. The default [`RetryPolicy`] retries
    /// transient overload rejections; [`NetClient::with_retry`] tunes it.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.write_all(&NET_MAGIC)?;
        let mut magic = [0u8; NET_MAGIC.len()];
        stream.read_exact(&mut magic).map_err(|_| {
            NetError::Handshake("server closed before presenting protocol magic".into())
        })?;
        if magic != NET_MAGIC {
            return Err(NetError::Handshake(format!(
                "peer magic {magic:02x?} is not the protocol's"
            )));
        }
        Ok(NetClient {
            stream,
            dec: FrameDecoder::new(),
            inbox: VecDeque::new(),
            next_id: 1,
            retry: RetryPolicy::default(),
            buf: vec![0u8; 64 * 1024],
        })
    }

    /// Replace the overload retry policy ([`RetryPolicy::fail_fast`]
    /// surfaces every rejection).
    pub fn with_retry(mut self, retry: RetryPolicy) -> NetClient {
        self.retry = retry;
        self
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<(), NetError> {
        let id = self.fresh_id();
        match self.call(Frame::Ping { id }, id)? {
            Frame::Pong { .. } => Ok(()),
            _ => Err(NetError::Unexpected("want Pong")),
        }
    }

    /// Answer one query, retrying transient overload rejections under
    /// the client's [`RetryPolicy`].
    pub fn query(&mut self, venue: u32, req: &QueryRequest) -> Result<QueryResponse, NetError> {
        let retry = self.retry;
        retry.run(NetError::is_retryable, || {
            let id = self.fresh_id();
            match self.call(
                Frame::Query {
                    id,
                    venue,
                    req: req.clone(),
                },
                id,
            )? {
                Frame::Answer { result, .. } => result.map_err(NetError::Server),
                Frame::Error { err, .. } => Err(NetError::Server(err)),
                _ => Err(NetError::Unexpected("want Answer")),
            }
        })
    }

    /// Answer a heterogeneous multi-venue batch; slot `i` answers
    /// `reqs[i]`. Per-slot failures are values, not call failures.
    pub fn query_batch(
        &mut self,
        reqs: &[(u32, QueryRequest)],
    ) -> Result<Vec<Result<QueryResponse, WireError>>, NetError> {
        let id = self.fresh_id();
        match self.call(
            Frame::QueryBatch {
                id,
                reqs: reqs.to_vec(),
            },
            id,
        )? {
            Frame::AnswerBatch { results, .. } => Ok(results),
            Frame::Error { err, .. } => Err(NetError::Server(err)),
            _ => Err(NetError::Unexpected("want AnswerBatch")),
        }
    }

    /// Apply an object-delta batch; returns the venue's post-apply
    /// version.
    pub fn update_objects(&mut self, venue: u32, deltas: &[ObjectDelta]) -> Result<u64, NetError> {
        let id = self.fresh_id();
        let frame = Frame::UpdateObjects {
            id,
            venue,
            deltas: deltas.to_vec(),
        };
        self.mutation(frame, id)
    }

    /// Apply a labelled keyword-delta batch; returns the post-apply
    /// version.
    pub fn update_keywords(
        &mut self,
        venue: u32,
        updates: &[ObjectUpdate],
    ) -> Result<u64, NetError> {
        let id = self.fresh_id();
        let frame = Frame::UpdateKeywords {
            id,
            venue,
            updates: updates.to_vec(),
        };
        self.mutation(frame, id)
    }

    /// Replace a venue's object set wholesale; returns the post-apply
    /// version.
    pub fn attach_objects(&mut self, venue: u32, objects: &[IndoorPoint]) -> Result<u64, NetError> {
        let id = self.fresh_id();
        let frame = Frame::AttachObjects {
            id,
            venue,
            objects: objects.to_vec(),
        };
        self.mutation(frame, id)
    }

    fn mutation(&mut self, frame: Frame, id: u64) -> Result<u64, NetError> {
        match self.call(frame, id)? {
            Frame::MutationOk { version, .. } => Ok(version),
            Frame::Error { err, .. } => Err(NetError::Server(err)),
            _ => Err(NetError::Unexpected("want MutationOk")),
        }
    }

    /// Register a venue server-side; returns the id requests route by.
    pub fn add_venue(&mut self, venue: &Venue, config: &ShardConfig) -> Result<u32, NetError> {
        let mut venue_json = Vec::new();
        venue
            .save_json(&mut venue_json)
            .expect("venue serialises to memory");
        let id = self.fresh_id();
        match self.call(
            Frame::AddVenue {
                id,
                venue_json,
                config: config.encode_wire(),
            },
            id,
        )? {
            Frame::VenueCreated { venue, .. } => Ok(venue),
            Frame::Error { err, .. } => Err(NetError::Server(err)),
            _ => Err(NetError::Unexpected("want VenueCreated")),
        }
    }

    /// Unregister a venue.
    pub fn remove_venue(&mut self, venue: u32) -> Result<(), NetError> {
        let id = self.fresh_id();
        match self.call(Frame::RemoveVenue { id, venue }, id)? {
            Frame::Ack { .. } => Ok(()),
            Frame::Error { err, .. } => Err(NetError::Server(err)),
            _ => Err(NetError::Unexpected("want Ack")),
        }
    }

    /// The service-wide stats snapshot (including per-venue replication
    /// lag).
    pub fn stats(&mut self) -> Result<WireServiceStats, NetError> {
        let id = self.fresh_id();
        match self.call(Frame::Stats { id }, id)? {
            Frame::StatsReply { stats, .. } => Ok(stats),
            Frame::Error { err, .. } => Err(NetError::Server(err)),
            _ => Err(NetError::Unexpected("want StatsReply")),
        }
    }

    /// Fetch the server's telemetry exposition page (Prometheus-style
    /// text; run `indoor_model::metrics::lint_text` over it before
    /// trusting the series).
    pub fn metrics(&mut self) -> Result<String, NetError> {
        let id = self.fresh_id();
        match self.call(Frame::Metrics { id }, id)? {
            Frame::MetricsText { text, .. } => Ok(text),
            Frame::Error { err, .. } => Err(NetError::Server(err)),
            _ => Err(NetError::Unexpected("want MetricsText")),
        }
    }

    // ---- pipelined interface ----

    /// Fire a query without waiting; returns the id its reply will echo.
    pub fn send_query(&mut self, venue: u32, req: QueryRequest) -> Result<u64, NetError> {
        let id = self.fresh_id();
        self.stream
            .write_all(&Frame::Query { id, venue, req }.encode())?;
        Ok(id)
    }

    /// Receive the next in-flight reply, whichever id it answers.
    pub fn recv_answer(&mut self) -> Result<Reply, NetError> {
        loop {
            let frame = match self.inbox.pop_front() {
                Some(f) => f,
                None => self.read_frame()?,
            };
            match frame {
                Frame::Answer { id, result } => return Ok((id, result)),
                Frame::Error { id, err } => return Ok((id, Err(err))),
                // Not a query reply: leave it for a sequential caller.
                other => self.inbox.push_back(other),
            }
        }
    }

    /// Set the socket read timeout governing [`NetClient::try_recv_answer`]
    /// (and blocking receives, which treat a timeout as "keep waiting").
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Non-blocking flavour of [`NetClient::recv_answer`]: `Ok(None)`
    /// when no complete reply is available within the socket's read
    /// timeout. The open-loop load generator uses this to keep sending
    /// on schedule while replies trickle back.
    pub fn try_recv_answer(&mut self) -> Result<Option<Reply>, NetError> {
        let is_reply = |f: &Frame| matches!(f, Frame::Answer { .. } | Frame::Error { .. });
        if let Some(pos) = self.inbox.iter().position(is_reply) {
            match self.inbox.remove(pos).expect("position just found") {
                Frame::Answer { id, result } => return Ok(Some((id, result))),
                Frame::Error { id, err } => return Ok(Some((id, Err(err)))),
                _ => unreachable!("position matched a reply frame"),
            }
        }
        loop {
            match self.dec.next()? {
                Some(Frame::Answer { id, result }) => return Ok(Some((id, result))),
                Some(Frame::Error { id, err }) => return Ok(Some((id, Err(err)))),
                Some(other) => {
                    self.inbox.push_back(other);
                    continue;
                }
                None => {}
            }
            match self.stream.read(&mut self.buf) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => {
                    let view = &self.buf[..n];
                    self.dec.extend(view);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Send `frame`, then read frames until the reply bearing `id`
    /// arrives (parking unrelated frames in the inbox).
    fn call(&mut self, frame: Frame, id: u64) -> Result<Frame, NetError> {
        self.stream.write_all(&frame.encode())?;
        if let Some(pos) = self.inbox.iter().position(|f| f.id() == Some(id)) {
            return Ok(self.inbox.remove(pos).expect("position just found"));
        }
        loop {
            let frame = self.read_frame()?;
            if frame.id() == Some(id) {
                return Ok(frame);
            }
            self.inbox.push_back(frame);
        }
    }

    /// Blocking read of the next complete frame.
    fn read_frame(&mut self) -> Result<Frame, NetError> {
        loop {
            if let Some(f) = self.dec.next()? {
                return Ok(f);
            }
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return Err(NetError::Closed);
            }
            self.dec.extend(&self.buf[..n]);
        }
    }
}

/// Convert a typed wire failure back into the in-process error
/// vocabulary where that helps callers reuse service-level handling
/// (admission rejections keep venue/occupancy detail; everything else
/// keeps its rendered message).
pub fn service_error(e: &WireError) -> ServiceError {
    use std::sync::Arc;
    match e {
        WireError::UnknownVenue { venue } => ServiceError::UnknownVenue(VenueId::from(*venue)),
        WireError::Overloaded {
            venue,
            in_flight,
            limit,
        } => ServiceError::Overloaded {
            venue: VenueId::from(*venue),
            in_flight: *in_flight as usize,
            limit: *limit as usize,
        },
        WireError::Timeout {
            venue,
            in_flight,
            limit,
        } => ServiceError::Timeout {
            venue: VenueId::from(*venue),
            in_flight: *in_flight as usize,
            limit: *limit as usize,
        },
        other => {
            ServiceError::Replication(VenueId::from(0u32), Arc::from(other.to_string().as_str()))
        }
    }
}

// `wire_error` and `service_error` are near-inverses; keep both sides
// honest with a round-trip check on the retryable pair.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire_error;

    #[test]
    fn admission_errors_round_trip_between_vocabularies() {
        let e = ServiceError::Overloaded {
            venue: VenueId::from(3u32),
            in_flight: 9,
            limit: 8,
        };
        assert_eq!(service_error(&wire_error(&e)), e);
        let t = ServiceError::Timeout {
            venue: VenueId::from(1u32),
            in_flight: 4,
            limit: 4,
        };
        assert_eq!(service_error(&wire_error(&t)), t);
    }
}
