//! Follower side of WAL-shipping replication.
//!
//! A follower is a **volatile** [`IndoorService`] (it must not
//! re-journal shipped records — see `vip_tree::apply_replicated`) fed by
//! a `Replicate` stream: connect, subscribe from the first LSN still
//! needed, apply every [`Frame::Wal`] record in order through the same
//! replay paths restart recovery uses. Because the leader ships the
//! journalled payload bytes verbatim and the follower applies them
//! through the recovery code, the replica's answers are byte-identical
//! to the leader's for every query kind.
//!
//! Catch-up is explicit in the protocol: the stream head carries the
//! leader's version at subscribe time, which the follower records via
//! [`IndoorService::note_leader_version`] so `replication_lag` in its
//! shard stats counts down to 0 as the backlog drains — and live
//! tailing afterwards keeps it at 0.
//!
//! [`IndoorService`]: vip_tree::IndoorService
//! [`IndoorService::note_leader_version`]: vip_tree::IndoorService::note_leader_version

use crate::NetError;
use indoor_model::frames::{Frame, FrameDecoder, NET_MAGIC};
use indoor_model::VenueId;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use vip_tree::IndoorService;

/// What a replication session accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaReport {
    /// The venue replicated (leader id = follower id).
    pub venue: VenueId,
    /// Records applied this session.
    pub applied: u64,
    /// The replica's version after the last applied record.
    pub version: u64,
    /// The leader's version from the stream head (the catch-up target
    /// at subscribe time; live tailing can push `version` past it).
    pub head: u64,
}

/// An open replication stream, past its handshake and `ReplHead`.
#[derive(Debug)]
pub struct ReplicaStream {
    stream: TcpStream,
    dec: FrameDecoder,
    venue: VenueId,
    head: u64,
    applied: u64,
    buf: Vec<u8>,
}

/// Connect to a leader and subscribe to `venue`'s WAL from `from_lsn`
/// (`0` bootstraps the venue from its birth record; `v + 1` resumes a
/// replica already at version `v`). Fails with the leader's typed
/// refusal if the suffix is unavailable.
pub fn subscribe(
    addr: impl ToSocketAddrs,
    venue: VenueId,
    from_lsn: u64,
) -> Result<ReplicaStream, NetError> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.write_all(&NET_MAGIC)?;
    let mut magic = [0u8; NET_MAGIC.len()];
    stream
        .read_exact(&mut magic)
        .map_err(|_| NetError::Handshake("leader closed before presenting magic".into()))?;
    if magic != NET_MAGIC {
        return Err(NetError::Handshake(format!(
            "peer magic {magic:02x?} is not the protocol's"
        )));
    }
    stream.write_all(
        &Frame::Replicate {
            venue: venue.index() as u32,
            from_lsn,
        }
        .encode(),
    )?;
    let mut rs = ReplicaStream {
        stream,
        dec: FrameDecoder::new(),
        venue,
        head: 0,
        applied: 0,
        buf: vec![0u8; 64 * 1024],
    };
    match rs.read_frame()? {
        Some(Frame::ReplHead { version, .. }) => {
            rs.head = version;
            Ok(rs)
        }
        Some(Frame::ReplEnd { err, .. }) => Err(match err {
            Some(e) => NetError::Server(e),
            None => NetError::Closed,
        }),
        Some(_) => Err(NetError::Unexpected("want ReplHead")),
        None => Err(NetError::Closed),
    }
}

impl ReplicaStream {
    /// The leader's version at subscribe time — the catch-up target.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Apply stream records to `service` until its replica of the venue
    /// reaches the stream head, then return (the stream stays open for
    /// [`ReplicaStream::tail`]). The first applied record registers the
    /// venue, after which the leader's version is noted so
    /// `replication_lag` counts down as the backlog drains.
    pub fn catch_up(&mut self, service: &IndoorService) -> Result<ReplicaReport, NetError> {
        // An unregistered venue always needs its Create record; a
        // registered replica is caught up once it reaches the head (so a
        // resume at `head` returns immediately instead of blocking on
        // the live stream).
        while service.version(self.venue).map_or(true, |v| v < self.head) {
            if !self.step(service)? {
                break;
            }
        }
        Ok(self.report(service))
    }

    /// Keep applying live records until the leader closes the stream
    /// (or ends it with `ReplEnd`), or `stop` is raised. The replica
    /// tracks the leader in real time while this runs.
    pub fn tail(
        &mut self,
        service: &IndoorService,
        stop: &AtomicBool,
    ) -> Result<ReplicaReport, NetError> {
        self.stream
            .set_read_timeout(Some(Duration::from_millis(20)))?;
        loop {
            if stop.load(Ordering::Acquire) {
                break;
            }
            match self.step(service) {
                Ok(true) => {}
                Ok(false) => break,
                Err(NetError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(self.report(service))
    }

    fn report(&self, service: &IndoorService) -> ReplicaReport {
        ReplicaReport {
            venue: self.venue,
            applied: self.applied,
            version: service.version(self.venue).unwrap_or(0),
            head: self.head,
        }
    }

    /// Apply the next stream frame: `Ok(true)` applied one record,
    /// `Ok(false)` the stream ended (leader close, `ReplEnd`, or venue
    /// removal).
    fn step(&mut self, service: &IndoorService) -> Result<bool, NetError> {
        let frame = match self.read_frame()? {
            Some(f) => f,
            None => return Ok(false),
        };
        match frame {
            Frame::Wal { record, lsn, .. } => {
                let version = service
                    .apply_replicated(self.venue, &record)
                    .map_err(|e| NetError::Server(crate::wire_error(&e)))?;
                self.applied += 1;
                // A Remove record unregisters the replica; the stream is
                // over for this venue.
                if version == u64::MAX {
                    return Ok(false);
                }
                debug_assert_eq!(version, lsn, "applied version tracks the shipped LSN");
                let _ = service.note_leader_version(self.venue, self.head.max(version));
                Ok(true)
            }
            Frame::ReplEnd { err: Some(e), .. } => Err(NetError::Server(e)),
            Frame::ReplEnd { err: None, .. } => Ok(false),
            _ => Err(NetError::Unexpected("want Wal or ReplEnd")),
        }
    }

    /// Read the next frame; `None` on leader close.
    fn read_frame(&mut self) -> Result<Option<Frame>, NetError> {
        loop {
            if let Some(f) = self.dec.next()? {
                return Ok(Some(f));
            }
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return Ok(None);
            }
            self.dec.extend(&self.buf[..n]);
        }
    }
}
