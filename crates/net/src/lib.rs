//! Network front-end for the indoor query service: a blocking-thread TCP
//! server speaking the length-prefixed CRC-framed protocol of
//! [`indoor_model::frames`], a pipelining client, and WAL-shipping
//! replication (leader stream serving + follower apply loop).
//!
//! # Shape
//!
//! * [`NetServer`] — binds a listener, spawns one thread per connection.
//!   Each connection drains its socket into a [`FrameDecoder`], coalesces
//!   every query frame buffered at that moment into **one**
//!   [`IndoorService::execute_batch`] call (pipelined clients batch
//!   themselves), and answers admission rejections with typed
//!   [`WireError::Overloaded`] / [`WireError::Timeout`] replies — an
//!   overloaded server degrades per-request, it never drops connections.
//! * [`NetClient`] — sequential request/reply calls plus a pipelined
//!   `send_query`/`recv_answer` pair; transient server rejections retry
//!   under a [`RetryPolicy`].
//! * [`follower`] — opens a `Replicate` stream and applies shipped WAL
//!   records through [`IndoorService::apply_replicated`], producing a
//!   replica whose answers are byte-identical to the leader's.
//!
//! Everything is `std`: blocking sockets with read timeouts, threads, and
//! mpsc — no async runtime. DESIGN.md §13 states the protocol and
//! replication contracts this crate implements.
//!
//! [`FrameDecoder`]: indoor_model::frames::FrameDecoder
//! [`IndoorService`]: vip_tree::IndoorService
//! [`IndoorService::execute_batch`]: vip_tree::IndoorService::execute_batch
//! [`IndoorService::apply_replicated`]: vip_tree::IndoorService::apply_replicated
//! [`WireError::Overloaded`]: indoor_model::frames::WireError::Overloaded
//! [`WireError::Timeout`]: indoor_model::frames::WireError::Timeout
//! [`RetryPolicy`]: vip_tree::RetryPolicy

mod client;
pub mod follower;
mod server;

pub use client::{service_error, NetClient, Reply};
pub use server::{NetServer, ServerConfig};

use indoor_model::frames::WireError;
use indoor_model::LoadError;
use std::io;

/// Client-side failures: transport, framing, handshake, or a typed
/// server-side error carried over the wire.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer's byte stream violated the framing or a frame's encoding.
    /// The connection is poisoned — close it.
    Protocol(LoadError),
    /// The peer did not present the protocol magic.
    Handshake(String),
    /// The server answered with a typed failure. Retryable iff
    /// [`WireError::is_retryable`].
    Server(WireError),
    /// The peer replied with a frame kind the protocol state does not
    /// allow (e.g. a `MutationOk` to a query).
    Unexpected(&'static str),
    /// The peer closed the connection mid-exchange.
    Closed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol violation: {e}"),
            NetError::Handshake(d) => write!(f, "handshake failed: {d}"),
            NetError::Server(e) => write!(f, "server error: {e}"),
            NetError::Unexpected(what) => write!(f, "unexpected reply frame: {what}"),
            NetError::Closed => write!(f, "connection closed by peer"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Protocol(e) => Some(e),
            NetError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<LoadError> for NetError {
    fn from(e: LoadError) -> NetError {
        NetError::Protocol(e)
    }
}

impl NetError {
    /// Whether retrying the request (with backoff) can succeed: true
    /// exactly for the server's admission-layer rejections.
    pub fn is_retryable(&self) -> bool {
        matches!(self, NetError::Server(e) if e.is_retryable())
    }
}

/// Map a service-side error to its wire mirror. `VenueId` crosses as its
/// raw index; detail strings as rendered messages.
pub(crate) fn wire_error(e: &vip_tree::ServiceError) -> WireError {
    use vip_tree::ServiceError as E;
    match e {
        E::UnknownVenue(v) => WireError::UnknownVenue {
            venue: v.index() as u32,
        },
        E::Overloaded {
            venue,
            in_flight,
            limit,
        } => WireError::Overloaded {
            venue: venue.index() as u32,
            in_flight: *in_flight as u64,
            limit: *limit as u64,
        },
        E::Timeout {
            venue,
            in_flight,
            limit,
        } => WireError::Timeout {
            venue: venue.index() as u32,
            in_flight: *in_flight as u64,
            limit: *limit as u64,
        },
        E::Delta(v, d) => WireError::Delta {
            venue: v.index() as u32,
            detail: d.to_string(),
        },
        E::Build(b) => WireError::Build {
            detail: b.to_string(),
        },
        E::Persist(v, p) => WireError::Persist {
            venue: v.index() as u32,
            detail: p.to_string(),
        },
        E::Degraded(v, r) => WireError::Degraded {
            venue: v.index() as u32,
            detail: r.to_string(),
        },
        E::Replication(v, d) => WireError::LogUnavailable {
            venue: v.index() as u32,
            detail: d.to_string(),
        },
    }
}
