//! The blocking-thread TCP server.
//!
//! One accept thread polls a non-blocking listener; each accepted
//! connection gets its own thread. A connection thread alternates
//! between draining the socket into its [`FrameDecoder`] and serving
//! every frame that drain completed — which is where pipelining pays:
//! all query frames a client had in flight at drain time coalesce into
//! **one** [`IndoorService::execute_batch`] call, so a depth-`d`
//! pipeline gets batch execution without any client-side batching API.
//!
//! Backpressure is typed, not transport-level: an admission rejection
//! ([`ServiceError::Overloaded`] / [`ServiceError::Timeout`]) becomes a
//! [`WireError`] reply for exactly the rejected requests; the connection
//! itself never drops. A *framing* error, by contrast, poisons the
//! decoder (byte boundaries are untrustworthy from then on), and the
//! contract is a clean connection close — the client observes EOF, never
//! a panic and never a garbage reply.
//!
//! A [`Frame::Replicate`] subscription flips the connection into a
//! one-way WAL stream: `ReplHead`, the on-disk backlog, then live
//! appends as the leader journals them (see `vip_tree::wal_subscribe`
//! for the no-gap/no-duplicate cut argument). The stream ends with
//! `ReplEnd` on server shutdown or venue removal.
//!
//! [`ServiceError::Overloaded`]: vip_tree::ServiceError::Overloaded
//! [`ServiceError::Timeout`]: vip_tree::ServiceError::Timeout

use crate::wire_error;
use indoor_model::frames::FrameDecoder;
use indoor_model::frames::{Frame, WireError, WireServiceStats, WireShardStats, NET_MAGIC};
use indoor_model::{Venue, VenueId};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use vip_tree::{IndoorService, ShardConfig};

/// Tuning knobs for the serving loops.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Socket read timeout — the quantum at which idle connection
    /// threads re-check the stop flag (and replication streams probe
    /// for a closed peer).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_millis(25),
        }
    }
}

/// A running server: owns the accept thread, which owns the connection
/// threads. Dropping (or [`NetServer::stop`]) signals every thread and
/// joins them — in-flight replies finish, replication streams end with
/// a clean `ReplEnd`.
#[derive(Debug)]
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind and serve `service` on `addr` (use port 0 for an ephemeral
    /// port; [`NetServer::local_addr`] reports the bound one).
    pub fn bind(service: Arc<IndoorService>, addr: impl ToSocketAddrs) -> io::Result<NetServer> {
        NetServer::bind_with(service, addr, ServerConfig::default())
    }

    /// [`NetServer::bind`] with explicit tuning.
    pub fn bind_with(
        service: Arc<IndoorService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept = std::thread::spawn(move || accept_loop(listener, service, config, stop2));
        Ok(NetServer {
            local_addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signal every serving thread and join them. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<IndoorService>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = service.clone();
                let stop = stop.clone();
                conns.push(std::thread::spawn(move || {
                    // Transport errors mean the peer is gone; there is
                    // nobody left to report them to.
                    let _ = serve_conn(&service, stream, config, &stop);
                }));
            }
            Err(e) if transient(&e) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => break,
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Read once into `buf`: `Some(n)` bytes arrived (0 = peer closed),
/// `None` = timeout quantum elapsed (caller re-checks the stop flag).
fn read_quantum(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<Option<usize>> {
    match stream.read(buf) {
        Ok(n) => Ok(Some(n)),
        Err(e) if transient(&e) => Ok(None),
        Err(e) => Err(e),
    }
}

fn serve_conn(
    service: &IndoorService,
    mut stream: TcpStream,
    config: ServerConfig,
    stop: &AtomicBool,
) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.write_all(&NET_MAGIC)?;
    let mut magic = [0u8; NET_MAGIC.len()];
    let mut got = 0;
    while got < magic.len() {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        match read_quantum(&mut stream, &mut magic[got..])? {
            Some(0) => return Ok(()),
            Some(n) => got += n,
            None => {}
        }
    }
    if magic != NET_MAGIC {
        // Not our protocol; close without guessing at a reply format.
        return Ok(());
    }

    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut frames: Vec<Frame> = Vec::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        match read_quantum(&mut stream, &mut buf)? {
            Some(0) => return Ok(()),
            Some(n) => dec.extend(&buf[..n]),
            None => continue,
        }
        loop {
            match dec.next() {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => break,
                // Poisoned framing: the byte boundaries are gone, so the
                // contract is a clean close — the client sees EOF.
                Err(_) => return Ok(()),
            }
        }
        let drained = std::mem::take(&mut frames);
        let mut i = 0;
        while i < drained.len() {
            if is_query(&drained[i]) {
                let start = i;
                while i < drained.len() && is_query(&drained[i]) {
                    i += 1;
                }
                answer_queries(service, &mut stream, &drained[start..i])?;
                continue;
            }
            if let Frame::Replicate { venue, from_lsn } = drained[i] {
                // The subscription consumes the connection: it becomes a
                // one-way WAL stream until peer close or server stop.
                return serve_replication(service, stream, venue, from_lsn, stop);
            }
            if !serve_admin(service, &mut stream, &drained[i])? {
                return Ok(());
            }
            i += 1;
        }
    }
}

fn is_query(f: &Frame) -> bool {
    matches!(f, Frame::Query { .. } | Frame::QueryBatch { .. })
}

/// Serve a coalesced run of query frames with one `execute_batch` call,
/// then fan the slot results back out to per-frame replies.
fn answer_queries(
    service: &IndoorService,
    stream: &mut TcpStream,
    run: &[Frame],
) -> io::Result<()> {
    let mut slots: Vec<(VenueId, vip_tree::QueryRequest)> = Vec::new();
    for f in run {
        match f {
            Frame::Query { venue, req, .. } => slots.push((VenueId::from(*venue), req.clone())),
            Frame::QueryBatch { reqs, .. } => {
                slots.extend(reqs.iter().map(|(v, r)| (VenueId::from(*v), r.clone())));
            }
            _ => unreachable!("answer_queries only receives query frames"),
        }
    }
    let mut results = service
        .execute_batch(&slots)
        .into_iter()
        .map(|r| r.map_err(|e| wire_error(&e)));
    let mut out = Vec::new();
    for f in run {
        match f {
            Frame::Query { id, .. } => {
                let result = results.next().expect("one result per slot");
                out.extend_from_slice(&Frame::Answer { id: *id, result }.encode());
            }
            Frame::QueryBatch { id, reqs } => {
                let results: Vec<_> = results.by_ref().take(reqs.len()).collect();
                out.extend_from_slice(&Frame::AnswerBatch { id: *id, results }.encode());
            }
            _ => unreachable!("answer_queries only receives query frames"),
        }
    }
    stream.write_all(&out)
}

/// Serve one non-query, non-replication frame. Returns `false` when the
/// peer violated the protocol and the connection must close.
fn serve_admin(service: &IndoorService, stream: &mut TcpStream, frame: &Frame) -> io::Result<bool> {
    let reply = match frame {
        Frame::Ping { id } => Frame::Pong { id: *id },
        Frame::UpdateObjects { id, venue, deltas } => mutation_reply(service, *id, *venue, || {
            service
                .update_objects(VenueId::from(*venue), deltas)
                .map(|_| ())
        }),
        Frame::UpdateKeywords { id, venue, updates } => {
            mutation_reply(service, *id, *venue, || {
                service
                    .update_keyword_objects(VenueId::from(*venue), updates)
                    .map(|_| ())
            })
        }
        Frame::AttachObjects { id, venue, objects } => mutation_reply(service, *id, *venue, || {
            service.attach_objects(VenueId::from(*venue), objects)
        }),
        Frame::AddVenue {
            id,
            venue_json,
            config,
        } => serve_add_venue(service, *id, venue_json, config),
        Frame::RemoveVenue { id, venue } => match service.remove_venue(VenueId::from(*venue)) {
            Ok(()) => Frame::Ack { id: *id },
            Err(e) => Frame::Error {
                id: *id,
                err: wire_error(&e),
            },
        },
        Frame::Stats { id } => Frame::StatsReply {
            id: *id,
            stats: collect_stats(service),
        },
        Frame::Metrics { id } => Frame::MetricsText {
            id: *id,
            text: indoor_model::metrics::encode_text(&service.metrics_snapshot()),
        },
        // Query/QueryBatch/Replicate are routed before this function;
        // anything else is a server→client frame sent the wrong way.
        _ => return Ok(false),
    };
    stream.write_all(&reply.encode())?;
    Ok(true)
}

/// Run a mutation and reply `MutationOk` with the venue's post-apply
/// version, or the typed error.
fn mutation_reply(
    service: &IndoorService,
    id: u64,
    venue: u32,
    op: impl FnOnce() -> Result<(), vip_tree::ServiceError>,
) -> Frame {
    match op() {
        Ok(()) => Frame::MutationOk {
            id,
            version: service.version(VenueId::from(venue)).unwrap_or(0),
        },
        Err(e) => Frame::Error {
            id,
            err: wire_error(&e),
        },
    }
}

fn serve_add_venue(service: &IndoorService, id: u64, venue_json: &[u8], config: &[u8]) -> Frame {
    let malformed = |detail: String| Frame::Error {
        id,
        err: WireError::Malformed { detail },
    };
    let venue = match Venue::load_json(venue_json) {
        Ok(v) => v,
        Err(e) => return malformed(format!("venue json: {e}")),
    };
    let config = match ShardConfig::decode_wire(config) {
        Ok(c) => c,
        Err(e) => return malformed(format!("shard config: {e}")),
    };
    match service.add_venue(Arc::new(venue), config) {
        Ok(venue) => Frame::VenueCreated {
            id,
            venue: venue.index() as u32,
        },
        Err(e) => Frame::Error {
            id,
            err: wire_error(&e),
        },
    }
}

fn collect_stats(service: &IndoorService) -> WireServiceStats {
    let s = service.stats();
    let shards = service
        .venues()
        .into_iter()
        .filter_map(|v| service.venue_stats(v).ok())
        .map(|sh| WireShardStats {
            venue: sh.venue.index() as u32,
            epoch: sh.epoch,
            version: sh.version,
            cached_entries: sh.cached_entries as u64,
            cache_capacity: sh.cache_capacity as u64,
            evictions: sh.evictions,
            in_flight: sh.in_flight as u64,
            admission_capacity: sh.admission_capacity as u64,
            shed: sh.shed,
            admission_timeouts: sh.admission_timeouts,
            replication_lag: sh.replication_lag,
            object_leaf_builds: sh.object_leaf_builds,
            object_leaf_touches: sh.object_leaf_touches,
            object_compactions: sh.object_compactions,
            live_objects: sh.live_objects as u64,
            object_slots: sh.object_slots as u64,
            leaf_grid_builds: sh.leaf_grid_builds,
            degraded: sh.degraded,
        })
        .collect();
    WireServiceStats {
        venues: s.venues as u64,
        queries: s.kinds.iter().map(|k| k.queries).sum(),
        cache_hits: s.kinds.iter().map(|k| k.cache_hits).sum(),
        deltas_absorbed: s.deltas_absorbed,
        shed: s.shed,
        admission_timeouts: s.admission_timeouts,
        in_flight: s.in_flight as u64,
        admission_capacity: s.admission_capacity as u64,
        degraded_venues: s.degraded_venues as u64,
        shards,
    }
}

/// Serve a `Replicate` subscription: head, on-disk backlog, then live
/// appends until the peer closes, the venue's taps drop (removal), or
/// the server stops.
fn serve_replication(
    service: &IndoorService,
    mut stream: TcpStream,
    venue: u32,
    from_lsn: u64,
    stop: &AtomicBool,
) -> io::Result<()> {
    let vid = VenueId::from(venue);
    let sub = match service.wal_subscribe(vid, from_lsn) {
        Ok(sub) => sub,
        Err(e) => {
            let err = if !service.is_durable() {
                WireError::NotDurable
            } else {
                wire_error(&e)
            };
            return stream.write_all(
                &Frame::ReplEnd {
                    venue,
                    err: Some(err),
                }
                .encode(),
            );
        }
    };
    let mut out = Frame::ReplHead {
        venue,
        version: sub.version,
    }
    .encode();
    for (lsn, payload) in &sub.backlog {
        out.extend_from_slice(
            &Frame::Wal {
                venue,
                lsn: *lsn,
                record: payload.to_vec(),
            }
            .encode(),
        );
    }
    stream.write_all(&out)?;

    let mut probe = [0u8; 1];
    loop {
        if stop.load(Ordering::Acquire) {
            return stream.write_all(&Frame::ReplEnd { venue, err: None }.encode());
        }
        match sub.live.recv_timeout(Duration::from_millis(20)) {
            Ok((lsn, payload)) => {
                stream.write_all(
                    &Frame::Wal {
                        venue,
                        lsn,
                        record: payload.to_vec(),
                    }
                    .encode(),
                )?;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Idle: probe for a silently departed peer so the thread
                // does not outlive the follower. The protocol is one-way
                // here, so any byte from the peer is a violation — close.
                match read_quantum(&mut stream, &mut probe)? {
                    Some(0) => return Ok(()),
                    Some(_) => return Ok(()),
                    None => {}
                }
            }
            // Venue removed: its shard (and every tap sender) is gone.
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                return stream.write_all(&Frame::ReplEnd { venue, err: None }.encode());
            }
        }
    }
}
