//! Route-overlay construction: Rnet hierarchy + per-Rnet border shortcuts.

use graph_partition::Hierarchy;
use indoor_graph::{CsrGraph, DijkstraEngine, GraphBuilder, Termination};
use indoor_model::{IndoorPoint, PartitionId, Venue};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

pub(crate) const NO_HOP: u32 = u32::MAX;

#[derive(Debug, Clone)]
pub struct RoadConfig {
    /// Children per Rnet level.
    pub fanout: usize,
    /// Maximum vertices per leaf Rnet.
    pub max_leaf: usize,
    pub seed: u64,
}

impl Default for RoadConfig {
    fn default() -> Self {
        RoadConfig {
            fanout: 4,
            max_leaf: 64,
            seed: 0x80AD,
        }
    }
}

/// Shortcuts of one Rnet: rows = the union of children borders (for a
/// leaf: its vertices), cols = the Rnet's own borders; entries are
/// **within-Rnet** shortest distances (bypass semantics). `hop` holds the
/// next row vertex on the within-Rnet path for overlay-path expansion.
#[derive(Debug, Clone)]
pub(crate) struct Shortcuts {
    pub rows: Vec<u32>,
    pub cols: Vec<u32>,
    pub dist: Box<[f64]>,
    pub hop: Box<[u32]>,
}

impl Shortcuts {
    #[inline]
    pub fn row_index(&self, v: u32) -> Option<usize> {
        self.rows.binary_search(&v).ok()
    }
    #[inline]
    pub fn col_index(&self, v: u32) -> Option<usize> {
        self.cols.binary_search(&v).ok()
    }
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.dist[r * self.cols.len() + c]
    }
    #[inline]
    pub fn hop_at(&self, r: usize, c: usize) -> Option<u32> {
        match self.hop[r * self.cols.len() + c] {
            NO_HOP => None,
            h => Some(h),
        }
    }
    fn size_bytes(&self) -> usize {
        (self.rows.len() + self.cols.len()) * 4 + self.dist.len() * 8 + self.hop.len() * 4
    }
}

/// Association directory + object positions.
#[derive(Debug, Default)]
pub(crate) struct RoadObjects {
    pub points: Vec<IndoorPoint>,
    pub by_partition: HashMap<PartitionId, Vec<u32>>,
    /// Distinct objects per Rnet ("is this Rnet object-free?").
    pub node_count: Vec<u32>,
}

pub struct Road {
    pub(crate) venue: Arc<Venue>,
    pub(crate) h: Hierarchy,
    pub(crate) shortcuts: Vec<Shortcuts>,
    pub(crate) engine: Mutex<DijkstraEngine>,
    pub(crate) objects: Option<RoadObjects>,
}

impl Road {
    pub fn build(venue: Arc<Venue>, config: &RoadConfig) -> Road {
        let g = venue.d2d();
        let h = Hierarchy::build(g, config.fanout, config.max_leaf, config.seed);
        let n_nodes = h.nodes.len();

        let mut shortcuts: Vec<Shortcuts> = Vec::with_capacity(n_nodes);

        // Bottom-up: children before parents (children always have larger
        // indices? Hierarchy builds top-down with a stack, so children DO
        // have larger indices than their parent).
        for idx in (0..n_nodes).rev() {
            let node = &h.nodes[idx];
            let sc = if node.is_leaf() {
                let (verts, local) = leaf_subgraph(g, &node.vertices);
                within_graph_shortcuts(&local, &verts, &verts, &node.borders)
            } else {
                // Local graph over the union of children borders: child
                // shortcut cliques + real edges crossing between children.
                let mut rows: Vec<u32> = node
                    .children
                    .iter()
                    .flat_map(|&c| h.nodes[c as usize].borders.iter().copied())
                    .collect();
                rows.sort_unstable();
                rows.dedup();
                let mut local_of = HashMap::with_capacity(rows.len());
                for (i, &v) in rows.iter().enumerate() {
                    local_of.insert(v, i as u32);
                }
                let mut gb = GraphBuilder::new(rows.len());
                for &c in &node.children {
                    let cnode = &h.nodes[c as usize];
                    // Children have larger node indices than their parent
                    // and were processed earlier in this reverse loop.
                    let cmat = &shortcuts[shortcut_slot(n_nodes, c)];
                    for (bi, &b) in cnode.borders.iter().enumerate() {
                        let ri = cmat.row_index(b).expect("border in child shortcuts");
                        for (bj, &b2) in cnode.borders.iter().enumerate().skip(bi + 1) {
                            let _ = bj;
                            let ci = cmat.col_index(b2).expect("border col");
                            let w = cmat.at(ri, ci);
                            if w.is_finite() {
                                gb.add_edge(local_of[&b], local_of[&b2], w);
                            }
                        }
                    }
                    // Real edges leaving this child but staying inside `idx`.
                    for &b in &cnode.borders {
                        for (u, w) in g.neighbors(b) {
                            let u_leaf = h.leaf_of_vertex[u as usize];
                            if !h.contains(c, u_leaf) && h.contains(idx as u32, u_leaf) {
                                if let Some(&lu) = local_of.get(&u) {
                                    gb.add_edge(local_of[&b], lu, w);
                                }
                            }
                        }
                    }
                }
                let local = gb.build();
                within_graph_shortcuts(&local, &rows, &rows, &node.borders)
            };
            shortcuts.push(sc);
        }
        shortcuts.reverse(); // restore node order

        let engine = DijkstraEngine::new(g.num_vertices());
        Road {
            venue,
            h,
            shortcuts,
            engine: Mutex::new(engine),
            objects: None,
        }
    }

    /// Register objects into the association directory.
    pub fn attach_objects(&mut self, objects: &[IndoorPoint]) {
        let mut by_partition: HashMap<PartitionId, Vec<u32>> = HashMap::new();
        for (i, o) in objects.iter().enumerate() {
            by_partition.entry(o.partition).or_default().push(i as u32);
        }
        // An Rnet "contains" an object iff it contains any door of the
        // object's partition (reaching the object may end at any of them).
        let mut node_count = vec![0u32; self.h.nodes.len()];
        for o in objects {
            let mut marked: Vec<u32> = Vec::new();
            for &d in &self.venue.partition(o.partition).doors {
                for n in self.h.chain(self.h.leaf_of_vertex[d.index()]) {
                    if !marked.contains(&n) {
                        marked.push(n);
                    }
                }
            }
            for n in marked {
                node_count[n as usize] += 1;
            }
        }
        self.objects = Some(RoadObjects {
            points: objects.to_vec(),
            by_partition,
            node_count,
        });
    }

    pub fn venue(&self) -> &Arc<Venue> {
        &self.venue
    }

    pub fn size_bytes(&self) -> usize {
        self.h.size_bytes()
            + self
                .shortcuts
                .iter()
                .map(Shortcuts::size_bytes)
                .sum::<usize>()
    }
}

/// Children are pushed after their parent during hierarchy construction,
/// so when filling `shortcuts` in reverse node order, the shortcut of node
/// `c` lives at slot `n_nodes - 1 - c`.
fn shortcut_slot(n_nodes: usize, c: u32) -> usize {
    n_nodes - 1 - c as usize
}

/// Extract the subgraph induced by `vertices` (sorted output order).
fn leaf_subgraph(g: &CsrGraph, vertices: &[u32]) -> (Vec<u32>, CsrGraph) {
    let mut verts = vertices.to_vec();
    verts.sort_unstable();
    let mut gb = GraphBuilder::new(verts.len());
    for (i, &v) in verts.iter().enumerate() {
        for (u, w) in g.neighbors(v) {
            if let Ok(j) = verts.binary_search(&u) {
                if j > i {
                    gb.add_edge(i as u32, j as u32, w);
                }
            }
        }
    }
    (verts, gb.build())
}

/// Shortcuts over a local graph: Dijkstra from every border (restricted to
/// the local graph = within-Rnet), recording distance and next-hop for
/// every row vertex.
fn within_graph_shortcuts(
    local: &CsrGraph,
    local_verts: &[u32],
    rows: &[u32],
    borders: &[u32],
) -> Shortcuts {
    let mut engine = DijkstraEngine::new(local.num_vertices());
    let (nr, nc) = (rows.len(), borders.len());
    let mut dist = vec![f64::INFINITY; nr * nc].into_boxed_slice();
    let mut hop = vec![NO_HOP; nr * nc].into_boxed_slice();

    for (ci, &b) in borders.iter().enumerate() {
        let lb = local_verts.binary_search(&b).expect("border in Rnet") as u32;
        engine.run(local, &[(lb, 0.0)], Termination::Exhaust);
        for (ri, &r) in rows.iter().enumerate() {
            if r == b {
                dist[ri * nc + ci] = 0.0;
                continue;
            }
            let lr = local_verts.binary_search(&r).expect("row in Rnet") as u32;
            let Some(dd) = engine.settled_distance(lr) else {
                continue;
            };
            dist[ri * nc + ci] = dd;
            // Next hop from r towards b = r's parent in the tree rooted at b.
            if let Some(p) = engine.parent(lr) {
                if p != indoor_graph::NO_VERTEX {
                    hop[ri * nc + ci] = local_verts[p as usize];
                }
            }
        }
    }

    Shortcuts {
        rows: rows.to_vec(),
        cols: borders.to_vec(),
        dist,
        hop,
    }
}
