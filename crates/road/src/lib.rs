//! ROAD (Lee, Lee, Zheng & Tian, TKDE 2012) adapted to indoor D2D graphs —
//! the paper's second road-network competitor.
//!
//! ROAD hierarchically partitions the graph into *Rnets* and augments it
//! with a **route overlay**: per Rnet, shortcuts between its border nodes
//! carrying the within-Rnet shortest distance. A search from `s` expands
//! the original edges only inside Rnets that (may) contain the target and
//! *bypasses* every other Rnet by jumping border-to-border over its
//! shortcuts; the **association directory** (per-Rnet object counts) plays
//! the same role for kNN/range queries. On indoor graphs the high
//! out-degree yields many borders per Rnet, so the overlay saves far less
//! than on road networks — reproducing the gap the paper reports.

mod build;
mod query;

pub use build::{Road, RoadConfig};

use indoor_model::{IndoorIndex, IndoorPath, IndoorPoint, ObjectId, ObjectQueries};

impl IndoorIndex for Road {
    fn name(&self) -> &'static str {
        "ROAD"
    }
    fn shortest_distance(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.shortest_distance_points(s, t)
    }
    fn shortest_path(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        self.shortest_path_points(s, t)
    }
    fn index_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

impl ObjectQueries for Road {
    fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        Road::knn(self, q, k)
    }
    fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        Road::range(self, q, radius)
    }
}
