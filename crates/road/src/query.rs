//! ROAD query processing: search-space pruned Dijkstra over the hybrid
//! overlay graph, plus kNN/range guided by the association directory.

use crate::build::Road;
use graph_partition::NO_H;
use indoor_graph::NO_VERTEX;
use indoor_model::{DoorId, IndoorPath, IndoorPoint, ObjectId};
use std::collections::HashMap;
use std::ops::ControlFlow;

impl Road {
    /// Nodes that must not be bypassed for this query: every Rnet on the
    /// chains of the given seed vertices (searches start/end inside them).
    fn chain_set(&self, seeds: &[(u32, f64)]) -> Vec<u32> {
        let mut out = Vec::new();
        for &(v, _) in seeds {
            for n in self.h.chain(self.h.leaf_of_vertex[v as usize]) {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// The maximal bypassable Rnet containing `v`, given the non-bypass
    /// predicate, or `None` when every Rnet of `v`'s chain must be opened.
    fn maximal_bypassed(&self, v: u32, non_bypass: &impl Fn(u32) -> bool) -> Option<u32> {
        let chain = self.h.chain(self.h.leaf_of_vertex[v as usize]);
        // chain is leaf→root; scan from the root side for the first
        // bypassable node (the root itself is never bypassable).
        let mut best = None;
        for &n in chain.iter().rev() {
            if !non_bypass(n) {
                best = Some(n);
                break; // highest bypassable = maximal Rnet to skip
            }
        }
        best
    }

    /// Hybrid expansion: inside bypassed Rnets travel border-to-border via
    /// shortcuts; everywhere else use original D2D edges.
    fn hybrid_neighbors(
        &self,
        v: u32,
        non_bypass: &impl Fn(u32) -> bool,
        out: &mut Vec<(u32, f64)>,
    ) {
        let g = self.venue.d2d();
        match self.maximal_bypassed(v, non_bypass) {
            Some(r) => {
                // v is necessarily a border of `r` (interiors of bypassed
                // Rnets are unreachable in the hybrid graph).
                let sc = &self.shortcuts[r as usize];
                if let Some(ri) = sc.row_index(v) {
                    for (ci, &b) in sc.cols.iter().enumerate() {
                        let w = sc.at(ri, ci);
                        if b != v && w.is_finite() {
                            out.push((b, w));
                        }
                    }
                }
                for (u, w) in g.neighbors(v) {
                    if !self.h.contains(r, self.h.leaf_of_vertex[u as usize]) {
                        out.push((u, w));
                    }
                }
            }
            None => out.extend(g.neighbors(v)),
        }
    }

    pub fn shortest_distance_points(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.route(s, t).map(|(d, _)| d)
    }

    pub fn shortest_path_points(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        let (length, doors) = self.route(s, t)?;
        Some(IndoorPath {
            source: *s,
            target: *t,
            doors,
            length,
        })
    }

    /// Search-space pruned point-to-point query; returns distance and the
    /// fully expanded door sequence.
    fn route(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<(f64, Vec<DoorId>)> {
        let venue = &*self.venue;
        let s_seeds = s.door_seeds(venue);
        let t_seeds = t.door_seeds(venue);
        let direct = s.direct_distance(venue, t);

        let mut protected = self.chain_set(&s_seeds);
        protected.extend(self.chain_set(&t_seeds));
        let non_bypass = |n: u32| protected.contains(&n);

        let mut best: Option<(f64, u32)> = None;
        let mut engine = self.engine.lock().expect("engine poisoned");
        engine.run_dynamic(
            &s_seeds,
            |v, out| self.hybrid_neighbors(v, &non_bypass, out),
            |v, d| {
                if let Some((b, _)) = best {
                    if d >= b {
                        return ControlFlow::Break(());
                    }
                }
                for &(tv, exit) in &t_seeds {
                    if tv == v {
                        let cand = d + exit;
                        if best.is_none_or(|(b, _)| cand < b) {
                            best = Some((cand, v));
                        }
                    }
                }
                ControlFlow::Continue(())
            },
        );

        // Overlay vertex chain (may contain shortcut jumps).
        let overlay: Option<(f64, Vec<u32>)> = best.map(|(d, exit)| {
            let mut seq = vec![exit];
            let mut cur = exit;
            while let Some(p) = engine.parent(cur) {
                if p == NO_VERTEX {
                    break;
                }
                seq.push(p);
                cur = p;
            }
            seq.reverse();
            (d, seq)
        });
        drop(engine);

        match (direct, overlay) {
            (Some(dd), Some((vd, _))) if dd <= vd => Some((dd, Vec::new())),
            (Some(dd), None) => Some((dd, Vec::new())),
            (_, Some((vd, overlay_seq))) => {
                let doors = self.expand_overlay(&overlay_seq, &non_bypass);
                Some((vd, doors))
            }
            (None, None) => None,
        }
    }

    /// Expand an overlay vertex chain into the real door sequence by
    /// unrolling shortcut jumps through the stored next-hops.
    fn expand_overlay(&self, seq: &[u32], non_bypass: &impl Fn(u32) -> bool) -> Vec<DoorId> {
        let g = self.venue.d2d();
        let mut out: Vec<u32> = vec![seq[0]];
        for w in seq.windows(2) {
            let (a, b) = (w[0], w[1]);
            // A real edge step unless the pair sits in one bypassed Rnet
            // and the shortcut was strictly shorter than any direct edge.
            let r = self.maximal_bypassed(a, non_bypass);
            let same_rnet =
                r.is_some_and(|r| self.h.contains(r, self.h.leaf_of_vertex[b as usize]));
            if !same_rnet {
                debug_assert!(g.arc_weight(a, b).is_some());
                out.push(b);
                continue;
            }
            self.expand_shortcut(r.unwrap(), a, b, &mut out);
        }
        out.dedup();
        out.into_iter().map(DoorId).collect()
    }

    /// Append the real vertex path of shortcut `(x → y)` of Rnet `n`
    /// (excluding `x`, including `y`).
    fn expand_shortcut(&self, n: u32, x: u32, y: u32, out: &mut Vec<u32>) {
        let node = &self.h.nodes[n as usize];
        let sc = &self.shortcuts[n as usize];
        // Walk the stored next-hops: x → hop(x, y) → ... → y.
        let ci = sc.col_index(y).expect("shortcut target is a border");
        let mut chain = vec![x];
        let mut cur = x;
        while cur != y {
            let ri = sc.row_index(cur).expect("hop vertex is a matrix row");
            match sc.hop_at(ri, ci) {
                Some(h) => {
                    chain.push(h);
                    cur = h;
                }
                None => {
                    chain.push(y);
                    break;
                }
            }
        }
        if node.is_leaf() {
            // Leaf hops walk the real subgraph: emit directly.
            out.extend_from_slice(&chain[1..]);
            return;
        }
        for w in chain.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Same child => the step is a child shortcut; else a real edge.
            let ca = self.child_containing(n, a);
            let cb = self.child_containing(n, b);
            if ca == cb && ca != NO_H {
                self.expand_shortcut(ca, a, b, out);
            } else {
                out.push(b);
            }
        }
    }

    fn child_containing(&self, n: u32, v: u32) -> u32 {
        let leaf = self.h.leaf_of_vertex[v as usize];
        let mut cur = leaf;
        loop {
            let p = self.h.nodes[cur as usize].parent;
            if p == n {
                return cur;
            }
            if p == NO_H {
                return NO_H;
            }
            cur = p;
        }
    }

    /// kNN by bypassing object-free Rnets (association directory).
    pub fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        self.object_expansion(q, ObjBound::Knn(k))
    }

    pub fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        self.object_expansion(q, ObjBound::Range(radius))
    }

    fn object_expansion(&self, q: &IndoorPoint, bound: ObjBound) -> Vec<(ObjectId, f64)> {
        let Some(objs) = &self.objects else {
            return Vec::new();
        };
        if objs.points.is_empty() || matches!(bound, ObjBound::Knn(0)) {
            return Vec::new();
        }
        let venue = &*self.venue;
        let seeds = q.door_seeds(venue);
        let protected = self.chain_set(&seeds);
        let non_bypass = |n: u32| protected.contains(&n) || objs.node_count[n as usize] > 0;

        let mut cand: HashMap<u32, f64> = HashMap::new();
        if let Some(local) = objs.by_partition.get(&q.partition) {
            for &oid in local {
                let o = &objs.points[oid as usize];
                cand.insert(oid, q.direct_distance(venue, o).expect("same partition"));
            }
        }
        let kth = |cand: &HashMap<u32, f64>| -> f64 {
            match bound {
                ObjBound::Range(r) => r,
                ObjBound::Knn(k) => {
                    if cand.len() < k {
                        f64::INFINITY
                    } else {
                        let mut ds: Vec<f64> = cand.values().copied().collect();
                        ds.sort_by(f64::total_cmp);
                        ds[k - 1]
                    }
                }
            }
        };

        let mut engine = self.engine.lock().expect("engine poisoned");
        engine.run_dynamic(
            &seeds,
            |v, out| self.hybrid_neighbors(v, &non_bypass, out),
            |v, d| {
                if d > kth(&cand) {
                    return ControlFlow::Break(());
                }
                let door = DoorId(v);
                for p in venue.door(door).partition_ids() {
                    if let Some(list) = objs.by_partition.get(&p) {
                        for &oid in list {
                            let o = &objs.points[oid as usize];
                            let od = d + o.distance_to_door(venue, door);
                            let e = cand.entry(oid).or_insert(f64::INFINITY);
                            if od < *e {
                                *e = od;
                            }
                        }
                    }
                }
                ControlFlow::Continue(())
            },
        );
        drop(engine);

        let mut out: Vec<(ObjectId, f64)> = cand
            .into_iter()
            .map(|(o, d)| (ObjectId(o), d))
            .filter(|(_, d)| d.is_finite())
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        match bound {
            ObjBound::Knn(k) => out.truncate(k),
            ObjBound::Range(r) => out.retain(|(_, d)| *d <= r),
        }
        out
    }
}

#[derive(Clone, Copy)]
enum ObjBound {
    Knn(usize),
    Range(f64),
}

#[cfg(test)]
mod tests {
    use crate::{Road, RoadConfig};
    use indoor_graph::DijkstraEngine;
    use indoor_model::{IndoorIndex, IndoorPoint, Venue};
    use indoor_synth::{random_venue, workload};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn oracle(
        venue: &Venue,
        engine: &mut DijkstraEngine,
        s: &IndoorPoint,
        t: &IndoorPoint,
    ) -> Option<f64> {
        let direct = s.direct_distance(venue, t);
        let via = engine
            .point_to_point(venue.d2d(), &s.door_seeds(venue), &t.door_seeds(venue))
            .map(|(d, _)| d);
        match (direct, via) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn road_matches_oracle(seed in 0u64..1_500, leaf in 6usize..48) {
            let venue = Arc::new(random_venue(seed));
            let cfg = RoadConfig { max_leaf: leaf, ..Default::default() };
            let road = Road::build(venue.clone(), &cfg);
            let mut engine = DijkstraEngine::new(venue.num_doors());
            for (s, t) in workload::query_pairs(&venue, 15, seed ^ 0x8A) {
                let want = oracle(&venue, &mut engine, &s, &t);
                let got = road.shortest_distance(&s, &t);
                match (want, got) {
                    (Some(w), Some(g)) => prop_assert!((w - g).abs() < 1e-6 * w.max(1.0),
                        "seed {seed} leaf {leaf}: got {g} want {w}"),
                    (None, None) => {}
                    _ => prop_assert!(false, "reachability mismatch"),
                }
            }
        }

        #[test]
        fn road_paths_valid(seed in 0u64..1_000) {
            let venue = Arc::new(random_venue(seed));
            let road = Road::build(venue.clone(), &RoadConfig { max_leaf: 12, ..Default::default() });
            for (s, t) in workload::query_pairs(&venue, 12, seed ^ 0x8B) {
                let Some(p) = road.shortest_path(&s, &t) else { continue };
                let len = p.validate(&venue).unwrap_or_else(|e| panic!("seed {seed}: {e}: {p:?}"));
                prop_assert!((len - p.length).abs() < 1e-6 * len.max(1.0),
                    "seed {seed}: reported {} walked {len}", p.length);
            }
        }

        #[test]
        fn road_knn_matches_expansion_oracle(seed in 0u64..800, k in 1usize..6) {
            let venue = Arc::new(random_venue(seed));
            let mut road = Road::build(venue.clone(), &RoadConfig { max_leaf: 16, ..Default::default() });
            let objects = workload::place_objects(&venue, 12, seed ^ 0x8C);
            road.attach_objects(&objects);
            let mut engine = DijkstraEngine::new(venue.num_doors());
            for q in workload::query_points(&venue, 5, seed ^ 0x8D) {
                let mut want: Vec<f64> = objects
                    .iter()
                    .filter_map(|o| oracle(&venue, &mut engine, &q, o))
                    .collect();
                want.sort_by(f64::total_cmp);
                let got = road.knn(&q, k);
                prop_assert_eq!(got.len(), k.min(want.len()));
                for (i, (_, d)) in got.iter().enumerate() {
                    prop_assert!((d - want[i]).abs() < 1e-6 * want[i].max(1.0),
                        "seed {}: rank {} got {} want {}", seed, i, d, want[i]);
                }
                let r = 120.0;
                let got_r = road.range(&q, r);
                let want_r = want.iter().filter(|d| **d <= r).count();
                prop_assert_eq!(got_r.len(), want_r);
            }
        }
    }
}
