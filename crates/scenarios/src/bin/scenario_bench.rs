//! The scenario-matrix benchmark: compile, validate and replay the six
//! standard adversarial profiles across the competitor suite and the
//! full `IndoorService` stack, then emit `BENCH_scenarios.json` and the
//! human-readable crossover matrix.
//!
//! ```sh
//! cargo run --release -p indoor-scenarios --bin scenario_bench -- \
//!     [--seed N] [--out PATH] [--matrix-out PATH] [--workers N]
//! ```
//!
//! The seed defaults to 42 (the committed baseline's), can be overridden
//! by `SCENARIO_SEED`, and is printed so any CI run is reproducible
//! verbatim. Before measuring, every profile is compiled at two thread
//! counts and the stream fingerprints are asserted identical — the
//! bit-determinism contract `scenario_check` later gates across runs.
//! Overload profiles hard-assert that shed/timeout counters were
//! actually exercised (`run_matrix` panics otherwise), so a plausible
//! but idle baseline cannot be committed.

use indoor_model::fingerprint_stream;
use indoor_scenarios::{
    compile, report, run_matrix, standard_profiles, standard_world, RunOptions,
};

fn main() {
    let mut seed: u64 = std::env::var("SCENARIO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let mut out_path = format!("{}/../../BENCH_scenarios.json", env!("CARGO_MANIFEST_DIR"));
    let mut matrix_path: Option<String> = None;
    let mut workers = RunOptions::default().workers;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().expect("missing seed").parse().expect("bad seed"),
            "--out" => out_path = it.next().expect("missing out path"),
            "--matrix-out" => matrix_path = Some(it.next().expect("missing matrix path")),
            "--workers" => {
                workers = it
                    .next()
                    .expect("missing workers")
                    .parse()
                    .expect("bad workers")
            }
            "--help" | "-h" => {
                println!(
                    "usage: scenario_bench [--seed N] [--out PATH] [--matrix-out PATH] [--workers N]"
                );
                return;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    println!("scenario_bench seed={seed} workers={workers} (rerun with SCENARIO_SEED={seed})");

    // Determinism pre-flight: identical seeds must reproduce identical
    // event streams regardless of compile parallelism.
    let world = standard_world();
    for sp in standard_profiles() {
        let a = fingerprint_stream(&compile(&sp.profile, &world, seed, 1));
        let b = fingerprint_stream(&compile(&sp.profile, &world, seed, 4));
        assert_eq!(
            a, b,
            "profile {} compiled differently at 1 vs 4 threads",
            sp.profile.name
        );
        println!("  {:<16} fingerprint 0x{a:016x}", sp.profile.name);
    }

    let opts = RunOptions {
        workers,
        ..RunOptions::default()
    };
    let out = run_matrix(seed, 2, &opts);

    let json = report::render_json(seed, opts.workers, &out.digests, &out.cells);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!(
        "\nwrote {} ({} profiles x {} cells)",
        out_path,
        out.digests.len(),
        out.cells.len()
    );

    let matrix = report::crossover_matrix(&out.cells);
    println!("\n{matrix}");
    if let Some(path) = matrix_path {
        std::fs::write(&path, &matrix).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
