//! CI regression gate over `BENCH_scenarios.json`.
//!
//! ```sh
//! cargo run --release -p indoor-scenarios --bin scenario_check -- \
//!     --baseline BENCH_scenarios.json --fresh /tmp/BENCH_scenarios.json [--threshold 3.0]
//! ```
//!
//! Two layers of checking:
//!
//! 1. **Determinism.** When the two files were generated from the same
//!    seed, every baseline profile must reappear in the fresh run with a
//!    bit-identical stream fingerprint. A mismatch means the workload
//!    compiler's output changed — either a nondeterminism bug or an
//!    intentional vocabulary change, and both demand attention (fix the
//!    bug, or refresh the committed baseline). A missing profile is the
//!    same hard failure. Different seeds skip the fingerprint layer
//!    (streams legitimately differ) but the cell gate still applies.
//! 2. **Latency.** Every (profile, index) cell is gated on fresh p50 at
//!    most `threshold ×` the baseline through [`indoor_bench::gate`] —
//!    the same engine as `bench_check`, with the same policy: stale
//!    baseline cells are hard errors, `host_cores` mismatches downgrade
//!    ratio violations to warnings, fresh-only cells warn until a
//!    refreshed baseline is committed.

use indoor_bench::gate;
use indoor_model::json::{self, Json};

const REFRESH_HINT: &str = "regenerate with `cargo run --release -p indoor-scenarios --bin \
                            scenario_bench` and commit the refreshed BENCH_scenarios.json";

struct Scenarios {
    seed: u64,
    host_cores: usize,
    /// (profile name, stream fingerprint) pairs.
    fingerprints: Vec<(String, u64)>,
    cells: Vec<gate::Cell>,
}

fn parse_fingerprint(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

fn load(path: &str) -> Scenarios {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    let seed = doc
        .get("seed")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("{path}: missing seed")) as u64;
    let host_cores = doc
        .get("host_cores")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("{path}: missing host_cores"));
    let fingerprints = doc
        .get("profiles")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{path}: missing profiles array"))
        .iter()
        .map(|row| {
            let name = row
                .get("name")
                .and_then(Json::as_str)
                .expect("profile name");
            let fp = row
                .get("fingerprint")
                .and_then(Json::as_str)
                .and_then(parse_fingerprint)
                .unwrap_or_else(|| panic!("{path}: profile {name}: bad fingerprint"));
            (name.to_string(), fp)
        })
        .collect();
    let cells = doc
        .get("results")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{path}: missing results array"))
        .iter()
        .map(|row| {
            let profile = row
                .get("profile")
                .and_then(Json::as_str)
                .expect("row profile");
            let index = row.get("index").and_then(Json::as_str).expect("row index");
            let us = row
                .get("p50_us")
                .and_then(Json::as_f64)
                .expect("row p50_us");
            gate::Cell::new(format!("({profile}, {index})"), us)
        })
        .collect();
    Scenarios {
        seed,
        host_cores,
        fingerprints,
        cells,
    }
}

fn main() {
    let mut baseline_path = String::from("BENCH_scenarios.json");
    let mut fresh_path = String::new();
    let mut threshold = 3.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_path = it.next().expect("missing baseline path"),
            "--fresh" => fresh_path = it.next().expect("missing fresh path"),
            "--threshold" => {
                threshold = it
                    .next()
                    .expect("missing threshold")
                    .parse()
                    .expect("bad threshold")
            }
            "--help" | "-h" => {
                println!("usage: scenario_check --baseline PATH --fresh PATH [--threshold X]");
                return;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(!fresh_path.is_empty(), "--fresh PATH is required");

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);

    // Layer 1: bit-determinism of the compiled streams.
    let mut failures = 0usize;
    if baseline.seed == fresh.seed {
        for (name, base_fp) in &baseline.fingerprints {
            match fresh.fingerprints.iter().find(|(n, _)| n == name) {
                None => {
                    failures += 1;
                    println!(
                        "FAIL: baseline profile {name} missing from the fresh run — stale \
                         baseline; if the profile was renamed or removed intentionally, \
                         {REFRESH_HINT}"
                    );
                }
                Some((_, fp)) if fp != base_fp => {
                    failures += 1;
                    println!(
                        "FAIL: profile {name} fingerprint 0x{fp:016x} != baseline 0x{base_fp:016x} \
                         at the same seed {} — the workload compiler is nondeterministic or its \
                         vocabulary changed; if intentional, {REFRESH_HINT}",
                        baseline.seed
                    );
                }
                Some((_, fp)) => {
                    println!("ok    profile {name} fingerprint 0x{fp:016x} reproduced");
                }
            }
        }
    } else {
        println!(
            "WARN: seeds differ (baseline {}, fresh {}) — fingerprint determinism not checked",
            baseline.seed, fresh.seed
        );
    }

    // Layer 2: p50 latency per (profile, index) cell.
    let comparable = baseline.host_cores == fresh.host_cores;
    if !comparable {
        println!(
            "WARN: host_cores mismatch (baseline {}, fresh {}) — ratio regressions reported as warnings only",
            baseline.host_cores, fresh.host_cores
        );
    }
    let out = gate::compare(
        &baseline.cells,
        &fresh.cells,
        &gate::GateConfig {
            threshold,
            comparable,
            incomparable_reason: format!(
                "host_cores {} in baseline vs {} here — contention profile incomparable",
                baseline.host_cores, fresh.host_cores
            ),
            refresh_hint: REFRESH_HINT.to_string(),
            // Sub-50ns p50s (keyword dispatch on bare indexes) sit at
            // timer resolution; don't ratio-gate a floored baseline.
            noise_floor: 0.05,
        },
    );
    for line in &out.lines {
        println!("{line}");
    }
    let failures = failures + out.failures;
    println!(
        "checked {} fingerprints + {} cells against {baseline_path} (threshold {threshold}x): \
         {failures} failures, {} warnings",
        baseline.fingerprints.len(),
        baseline.cells.len(),
        out.warnings
    );
    if failures > 0 {
        eprintln!(
            "scenario gate failed: fingerprint drift, stale baseline cell, or >{threshold}x \
             p50 regression on matching hardware"
        );
        std::process::exit(1);
    }
}
