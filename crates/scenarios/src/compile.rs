//! Profile → event-stream compiler.
//!
//! [`compile`] lowers a [`WorkloadProfile`] into a concrete
//! [`TickEvents`] stream against a [`ScenarioWorld`] (one venue per
//! slot). The compilation is **bit-deterministic for a fixed seed at any
//! thread count**, which is what lets CI gate on a single stream
//! fingerprint:
//!
//! * Phase 1 (serial): the *stateful* plan — venue lifecycle, the churn
//!   batches (whose validity depends on every prior delta: you cannot
//!   remove an object you already removed), and the per-tick alive-slot
//!   sets.
//! * Phase 2 (parallel over ticks): the *stateless* query events. Each
//!   tick draws from its own RNG seeded by `(seed, tick)`, so the result
//!   is independent of how ticks are distributed over workers
//!   ([`par_map_init`] is slot-indexed, not arrival-ordered).
//!
//! [`validate_stream`] is the independent re-simulation the proptests
//! run: every generated stream must pass it before it is allowed near a
//! service — slot ids in range, no query to a dead venue, and every
//! delta batch applicable without a `DeltaError` to the object set its
//! prior deltas imply.

use crate::zipf::Zipf;
use indoor_graph::parallel::par_map_init;
use indoor_model::scenario::ScenarioStreamError;
use indoor_model::{
    IndoorPoint, KeywordSkew, ObjectDelta, ObjectId, ObjectUpdate, QueryKind, QueryRequest,
    ScenarioEvent, TickEvents, Venue, VenueAction, WorkloadProfile,
};
use indoor_synth::workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// Never let churn drain a slot's object set below this: kNN over an
/// empty set is a different workload, not a harder one.
const MIN_LIVE: usize = 8;

/// The venues behind the profile's slots: slot `i` serves
/// `venues[i]`. Venue add/remove events re-register the same venue —
/// the *world* is fixed, the *service membership* churns.
#[derive(Clone)]
pub struct ScenarioWorld {
    venues: Vec<Arc<Venue>>,
}

impl ScenarioWorld {
    pub fn new(venues: Vec<Arc<Venue>>) -> ScenarioWorld {
        assert!(!venues.is_empty(), "world needs at least one venue");
        ScenarioWorld { venues }
    }

    pub fn slots(&self) -> u32 {
        self.venues.len() as u32
    }

    pub fn venue(&self, slot: u32) -> &Arc<Venue> {
        &self.venues[slot as usize]
    }

    /// The initial object set of `slot` — ids `0..n` at seeded
    /// positions. The compiler's churn liveness model and the runner's
    /// `ShardConfig::objects` both start from exactly this set, which is
    /// what makes generated delta streams valid by construction.
    pub fn base_objects(&self, slot: u32, n: u32, seed: u64) -> Vec<IndoorPoint> {
        workload::place_objects(
            self.venue(slot),
            n as usize,
            mix(seed, 0xB0B5 ^ u64::from(slot)),
        )
    }
}

/// Derive an independent RNG seed from `(seed, salt)` (SplitMix64-style
/// odd-constant spread; `StdRng::seed_from_u64` hashes again on top).
fn mix(seed: u64, salt: u64) -> u64 {
    seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// How many events tick `tick` carries for `slot` under the profile's
/// arrival shape: with a `hot_slot`, the curve applies to that slot only
/// and everyone else holds base load — the flash-crowd victim vs. its
/// neighbours.
fn tick_count(profile: &WorkloadProfile, base: u32, tick: u32, slot: u32) -> u32 {
    let level = match profile.hot_slot {
        Some(hot) if hot != slot => 1.0,
        _ => profile.arrival.level(tick, profile.ticks),
    };
    (f64::from(base) * level + 0.5) as u32
}

/// One slot's churn liveness model (phase 1 state).
struct LiveSet {
    live: Vec<u32>,
    next_id: u32,
}

impl LiveSet {
    fn new(n: u32) -> LiveSet {
        LiveSet {
            live: (0..n).collect(),
            next_id: n,
        }
    }
}

/// Generate one churn batch against `set`, advancing it. When `zipf` is
/// `Some`, the batch is a *keyword* batch: every update labelled, and —
/// because a keyword object set only ever grows or moves here — no
/// removes (the plain set absorbs the removals; see the module docs of
/// the runner for how batches route).
fn churn_batch(
    set: &mut LiveSet,
    venue: &Venue,
    count: u32,
    insert_pct: u32,
    remove_pct: u32,
    zipf: Option<(&Zipf, &KeywordSkew)>,
    rng: &mut StdRng,
) -> Vec<ObjectUpdate> {
    let mut updates = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let roll: u32 = rng.gen_range(0..100);
        let labels = |rng: &mut StdRng| match zipf {
            Some((z, _)) => vec![KeywordSkew::label(z.sample(rng))],
            None => Vec::new(),
        };
        let delta = if roll < insert_pct {
            let id = ObjectId(set.next_id);
            set.next_id += 1;
            set.live.push(id.0);
            ObjectDelta::Insert {
                id,
                at: workload::random_point(venue, rng),
            }
        } else if roll < insert_pct + remove_pct && set.live.len() > MIN_LIVE && zipf.is_none() {
            let idx = rng.gen_range(0..set.live.len());
            ObjectDelta::Remove {
                id: ObjectId(set.live.swap_remove(idx)),
            }
        } else {
            let idx = rng.gen_range(0..set.live.len());
            ObjectDelta::Move {
                id: ObjectId(set.live[idx]),
                to: workload::random_point(venue, rng),
            }
        };
        updates.push(ObjectUpdate {
            delta,
            labels: labels(rng),
        });
    }
    updates
}

/// Lower `profile` to its event stream. `threads` parallelises query
/// generation only — the output is bit-identical for any value
/// (`fingerprint_stream` proves it in the proptests).
pub fn compile(
    profile: &WorkloadProfile,
    world: &ScenarioWorld,
    seed: u64,
    threads: usize,
) -> Vec<TickEvents> {
    assert!(
        profile.max_slot() < world.slots(),
        "profile {} references slot {} but the world has {}",
        profile.name,
        profile.max_slot(),
        world.slots()
    );
    let kw = profile
        .keywords
        .as_ref()
        .map(|skew| (Zipf::for_skew(skew), *skew));
    assert!(
        profile.mix.weights[QueryKind::KnnKeyword.index()] == 0 || kw.is_some(),
        "profile {} mixes keyword queries without a KeywordSkew",
        profile.name
    );

    // ---- Phase 1: serial stateful plan ------------------------------
    let mut alive: Vec<bool> = (0..world.slots())
        .map(|s| s < profile.initial_slots)
        .collect();
    // Per-slot churn liveness; keyword set tracked separately (the two
    // object sets are independent indexes and diverge under churn).
    let mut plain_sets: Vec<LiveSet> = (0..world.slots())
        .map(|_| LiveSet::new(profile.objects_per_venue))
        .collect();
    let mut kw_sets: Vec<LiveSet> = (0..world.slots())
        .map(|_| LiveSet::new(profile.objects_per_venue))
        .collect();
    let mut churn_rng = StdRng::seed_from_u64(mix(seed, 0xC0FF_EE00));

    let mut lifecycle: Vec<Vec<ScenarioEvent>> = vec![Vec::new(); profile.ticks as usize];
    for ev in &profile.venue_events {
        if ev.tick >= profile.ticks {
            continue;
        }
        let out = &mut lifecycle[ev.tick as usize];
        match ev.action {
            VenueAction::Add { slot } if !alive[slot as usize] => {
                alive[slot as usize] = true;
                // A re-added slot starts from fresh base objects (the
                // runner attaches them on add), so its liveness resets.
                plain_sets[slot as usize] = LiveSet::new(profile.objects_per_venue);
                kw_sets[slot as usize] = LiveSet::new(profile.objects_per_venue);
                out.push(ScenarioEvent::AddVenue { slot });
            }
            VenueAction::Remove { slot } if alive[slot as usize] => {
                alive[slot as usize] = false;
                out.push(ScenarioEvent::RemoveVenue { slot });
            }
            // No-op transitions (double add/remove) are dropped at
            // compile time so every emitted event changes state.
            _ => {}
        }
    }

    // Alive-slot sets and churn batches, resolved per tick in order.
    let mut alive_at: Vec<Vec<u32>> = Vec::with_capacity(profile.ticks as usize);
    let mut updates_at: Vec<Vec<ScenarioEvent>> = Vec::with_capacity(profile.ticks as usize);
    {
        // Replay the lifecycle serially so tick t's plan sees every
        // add/remove with tick ≤ t.
        let mut alive_now: Vec<bool> = (0..world.slots())
            .map(|s| s < profile.initial_slots)
            .collect();
        for tick in 0..profile.ticks {
            for ev in &lifecycle[tick as usize] {
                match ev {
                    ScenarioEvent::AddVenue { slot } => alive_now[*slot as usize] = true,
                    ScenarioEvent::RemoveVenue { slot } => alive_now[*slot as usize] = false,
                    _ => unreachable!("lifecycle holds venue events only"),
                }
            }
            alive_at.push(
                (0..world.slots())
                    .filter(|&s| alive_now[s as usize])
                    .collect(),
            );

            let mut tick_updates = Vec::new();
            if let Some(churn) = &profile.churn {
                let slot = profile.churn_slot;
                if alive_now[slot as usize] {
                    let count = (f64::from(churn.base_per_tick)
                        * churn.curve.level(tick, profile.ticks)
                        + 0.5) as u32;
                    if count > 0 {
                        // Keyword batches interleave with plain ones when
                        // the profile carries a vocabulary, exercising
                        // both maintenance paths under one stream.
                        let keyworded = kw.is_some() && churn_rng.gen_bool(0.34);
                        let (set, zipf) = if keyworded {
                            let (z, s) = kw.as_ref().unwrap();
                            (&mut kw_sets[slot as usize], Some((z, s)))
                        } else {
                            (&mut plain_sets[slot as usize], None)
                        };
                        let updates = churn_batch(
                            set,
                            world.venue(slot),
                            count,
                            churn.insert_pct,
                            churn.remove_pct,
                            zipf,
                            &mut churn_rng,
                        );
                        tick_updates.push(ScenarioEvent::Updates { slot, updates });
                    }
                }
            }
            updates_at.push(tick_updates);
        }
    }

    // Per-slot hot pools for the kiosk-repeat share of traffic.
    let hot_pools: Vec<Vec<IndoorPoint>> = (0..world.slots())
        .map(|slot| {
            workload::query_points(
                world.venue(slot),
                profile.hot_set.max(1) as usize,
                mix(seed, 0x407 ^ u64::from(slot)),
            )
        })
        .collect();

    // ---- Phase 2: parallel stateless query generation ---------------
    let ticks: Vec<u32> = (0..profile.ticks).collect();
    let queries_at: Vec<Vec<ScenarioEvent>> = par_map_init(
        &ticks,
        threads,
        || (),
        |_, _, &tick| {
            let mut rng = StdRng::seed_from_u64(mix(seed, 0x7100 ^ u64::from(tick)));
            let mut events = Vec::new();
            for &slot in &alive_at[tick as usize] {
                let venue = world.venue(slot);
                let pool = &hot_pools[slot as usize];
                let count = tick_count(profile, profile.queries_per_tick, tick, slot);
                for _ in 0..count {
                    let point = |rng: &mut StdRng| {
                        if profile.repeat_pct > 0 && rng.gen_range(0u32..100) < profile.repeat_pct {
                            pool[rng.gen_range(0..pool.len())]
                        } else {
                            workload::random_point(venue, rng)
                        }
                    };
                    let roll = rng.gen_range(0..profile.mix.total());
                    let req = match profile.mix.kind_for(roll) {
                        QueryKind::Knn => QueryRequest::Knn {
                            q: point(&mut rng),
                            k: profile.knn_k as usize,
                        },
                        QueryKind::Range => QueryRequest::Range {
                            q: point(&mut rng),
                            radius: profile.range_radius,
                        },
                        QueryKind::KnnKeyword => {
                            let (z, _) = kw.as_ref().expect("mix checked above");
                            QueryRequest::KnnKeyword {
                                q: point(&mut rng),
                                k: profile.knn_k as usize,
                                keyword: KeywordSkew::label(z.sample(&mut rng)).into(),
                            }
                        }
                        QueryKind::ShortestDistance => QueryRequest::ShortestDistance {
                            s: point(&mut rng),
                            t: point(&mut rng),
                        },
                        QueryKind::ShortestPath => QueryRequest::ShortestPath {
                            s: point(&mut rng),
                            t: point(&mut rng),
                        },
                    };
                    events.push(ScenarioEvent::Query { slot, req });
                }
            }
            events
        },
    );

    // ---- Assembly: lifecycle, then queries, then updates ------------
    ticks
        .into_iter()
        .map(|tick| {
            let mut events = std::mem::take(&mut lifecycle[tick as usize]);
            events.extend(queries_at[tick as usize].iter().cloned());
            events.extend(updates_at[tick as usize].iter().cloned());
            TickEvents { tick, events }
        })
        .collect()
}

/// Independently re-simulate `stream` and reject anything a service
/// would have to reject: out-of-range or dead slots, points outside a
/// slot's venue, delta batches that would raise a `DeltaError`, mixed
/// plain/keyword batches, unordered ticks.
pub fn validate_stream(
    profile: &WorkloadProfile,
    world: &ScenarioWorld,
    stream: &[TickEvents],
) -> Result<(), ScenarioStreamError> {
    let slots = world.slots();
    let mut alive: Vec<bool> = (0..slots).map(|s| s < profile.initial_slots).collect();
    let mut plain: Vec<HashSet<u32>> = (0..slots)
        .map(|_| (0..profile.objects_per_venue).collect())
        .collect();
    let mut kws: Vec<HashSet<u32>> = (0..slots)
        .map(|_| (0..profile.objects_per_venue).collect())
        .collect();
    let mut last_tick: Option<u32> = None;

    let check_slot = |tick: u32, slot: u32| {
        if slot >= slots {
            Err(ScenarioStreamError::SlotOutOfRange { tick, slot, slots })
        } else {
            Ok(())
        }
    };
    let check_point = |tick: u32, slot: u32, p: &IndoorPoint| {
        if p.partition.index() >= world.venue(slot).num_partitions() {
            Err(ScenarioStreamError::BadPartition { tick, slot })
        } else {
            Ok(())
        }
    };

    for te in stream {
        let tick = te.tick;
        if let Some(prev) = last_tick {
            if tick <= prev {
                return Err(ScenarioStreamError::UnorderedTicks { tick });
            }
        }
        last_tick = Some(tick);
        for ev in &te.events {
            match ev {
                ScenarioEvent::AddVenue { slot } => {
                    check_slot(tick, *slot)?;
                    if alive[*slot as usize] {
                        return Err(ScenarioStreamError::InvalidDelta {
                            tick,
                            slot: *slot,
                            detail: "add of an already-alive slot".into(),
                        });
                    }
                    alive[*slot as usize] = true;
                    plain[*slot as usize] = (0..profile.objects_per_venue).collect();
                    kws[*slot as usize] = (0..profile.objects_per_venue).collect();
                }
                ScenarioEvent::RemoveVenue { slot } => {
                    check_slot(tick, *slot)?;
                    if !alive[*slot as usize] {
                        return Err(ScenarioStreamError::SlotNotAlive { tick, slot: *slot });
                    }
                    alive[*slot as usize] = false;
                }
                ScenarioEvent::Query { slot, req } => {
                    check_slot(tick, *slot)?;
                    if !alive[*slot as usize] {
                        return Err(ScenarioStreamError::SlotNotAlive { tick, slot: *slot });
                    }
                    match req {
                        QueryRequest::Knn { q, .. }
                        | QueryRequest::Range { q, .. }
                        | QueryRequest::KnnKeyword { q, .. } => check_point(tick, *slot, q)?,
                        QueryRequest::ShortestDistance { s, t }
                        | QueryRequest::ShortestPath { s, t } => {
                            check_point(tick, *slot, s)?;
                            check_point(tick, *slot, t)?;
                        }
                    }
                }
                ScenarioEvent::Updates { slot, updates } => {
                    check_slot(tick, *slot)?;
                    if !alive[*slot as usize] {
                        return Err(ScenarioStreamError::SlotNotAlive { tick, slot: *slot });
                    }
                    let labelled = updates.iter().filter(|u| !u.labels.is_empty()).count();
                    if labelled != 0 && labelled != updates.len() {
                        return Err(ScenarioStreamError::InvalidDelta {
                            tick,
                            slot: *slot,
                            detail: "batch mixes labelled and unlabelled updates".into(),
                        });
                    }
                    let set = if labelled == 0 {
                        &mut plain[*slot as usize]
                    } else {
                        &mut kws[*slot as usize]
                    };
                    for u in updates {
                        let bad = |detail: String| ScenarioStreamError::InvalidDelta {
                            tick,
                            slot: *slot,
                            detail,
                        };
                        match &u.delta {
                            ObjectDelta::Insert { id, at } => {
                                check_point(tick, *slot, at)?;
                                if !set.insert(id.0) {
                                    return Err(bad(format!("duplicate insert of {id}")));
                                }
                            }
                            ObjectDelta::Remove { id } => {
                                if !set.remove(&id.0) {
                                    return Err(bad(format!("remove of unknown {id}")));
                                }
                            }
                            ObjectDelta::Move { id, to } => {
                                check_point(tick, *slot, to)?;
                                if !set.contains(&id.0) {
                                    return Err(bad(format!("move of unknown {id}")));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_model::{fingerprint_stream, ArrivalCurve, ChurnSpec, QueryMix, VenueEvent};
    use indoor_synth::random_venue;

    fn small_world(slots: u32) -> ScenarioWorld {
        ScenarioWorld::new(
            (0..slots)
                .map(|s| Arc::new(random_venue(60 + u64::from(s))))
                .collect(),
        )
    }

    fn churny_profile() -> WorkloadProfile {
        let mut p = WorkloadProfile::base("churny");
        p.ticks = 12;
        p.queries_per_tick = 16;
        p.initial_slots = 2;
        p.keywords = Some(KeywordSkew {
            vocabulary: 8,
            exponent: 1,
        });
        p.mix = QueryMix::uniform();
        p.churn = Some(ChurnSpec {
            base_per_tick: 20,
            curve: ArrivalCurve::Spike {
                start: 4,
                len: 3,
                magnify: 5,
            },
            insert_pct: 30,
            remove_pct: 30,
        });
        p.repeat_pct = 25;
        p.venue_events = vec![
            VenueEvent {
                tick: 3,
                action: VenueAction::Remove { slot: 1 },
            },
            VenueEvent {
                tick: 8,
                action: VenueAction::Add { slot: 1 },
            },
        ];
        p
    }

    #[test]
    fn compile_is_thread_count_invariant() {
        let world = small_world(2);
        let p = churny_profile();
        let a = compile(&p, &world, 99, 1);
        let b = compile(&p, &world, 99, 3);
        assert_eq!(fingerprint_stream(&a), fingerprint_stream(&b));
        assert_eq!(a, b);
        // A different seed is a different stream.
        let c = compile(&p, &world, 100, 1);
        assert_ne!(fingerprint_stream(&a), fingerprint_stream(&c));
    }

    #[test]
    fn compiled_stream_validates_and_exercises_every_event_kind() {
        let world = small_world(2);
        let p = churny_profile();
        let stream = compile(&p, &world, 7, 2);
        validate_stream(&p, &world, &stream).expect("stream valid");
        let queries: usize = stream.iter().map(TickEvents::queries).sum();
        let deltas: usize = stream.iter().map(TickEvents::deltas).sum();
        assert!(queries > 0 && deltas > 0);
        let lifecycle = stream
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| {
                matches!(
                    e,
                    ScenarioEvent::AddVenue { .. } | ScenarioEvent::RemoveVenue { .. }
                )
            })
            .count();
        assert_eq!(lifecycle, 2, "one remove + one re-add");
        // Both maintenance paths appear: labelled and plain batches.
        let (mut plain_batches, mut kw_batches) = (0, 0);
        for ev in stream.iter().flat_map(|t| &t.events) {
            if let ScenarioEvent::Updates { updates, .. } = ev {
                if updates.iter().all(|u| u.labels.is_empty()) {
                    plain_batches += 1;
                } else {
                    kw_batches += 1;
                }
            }
        }
        assert!(plain_batches > 0 && kw_batches > 0);
    }

    #[test]
    fn spike_concentrates_load_on_the_hot_slot() {
        let world = small_world(2);
        let mut p = WorkloadProfile::base("flash");
        p.ticks = 10;
        p.queries_per_tick = 10;
        p.initial_slots = 2;
        p.arrival = ArrivalCurve::Spike {
            start: 5,
            len: 2,
            magnify: 10,
        };
        p.hot_slot = Some(1);
        let stream = compile(&p, &world, 5, 1);
        validate_stream(&p, &world, &stream).unwrap();
        let count = |tick: usize, slot: u32| {
            stream[tick]
                .events
                .iter()
                .filter(|e| matches!(e, ScenarioEvent::Query { slot: s, .. } if *s == slot))
                .count()
        };
        assert_eq!(count(4, 1), 10, "base load before the spike");
        assert_eq!(count(5, 1), 100, "10x at the hot slot");
        assert_eq!(count(5, 0), 10, "neighbour unaffected");
    }

    #[test]
    fn validator_rejects_corrupted_streams() {
        let world = small_world(1);
        let p = WorkloadProfile::base("tiny");
        let mut stream = compile(&p, &world, 1, 1);
        // Duplicate insert of a base id.
        stream[0].events.push(ScenarioEvent::Updates {
            slot: 0,
            updates: vec![ObjectUpdate {
                delta: ObjectDelta::Insert {
                    id: ObjectId(0),
                    at: world.base_objects(0, 1, 1)[0],
                },
                labels: Vec::new(),
            }],
        });
        assert!(matches!(
            validate_stream(&p, &world, &stream),
            Err(ScenarioStreamError::InvalidDelta { .. })
        ));
        // Query to an out-of-range slot.
        let mut stream = compile(&p, &world, 1, 1);
        stream[0].events.push(ScenarioEvent::Query {
            slot: 9,
            req: QueryRequest::Knn {
                q: world.base_objects(0, 1, 1)[0],
                k: 1,
            },
        });
        assert!(matches!(
            validate_stream(&p, &world, &stream),
            Err(ScenarioStreamError::SlotOutOfRange { .. })
        ));
    }
}
