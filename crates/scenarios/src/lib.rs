//! Scenario lab: adversarial workload profiles for the index suite.
//!
//! *An Experimental Analysis of Indoor Spatial Queries* (PAPERS.md) makes
//! the case that index rankings are workload-dependent: the winner under
//! uniform point queries is not the winner under skewed keyword traffic
//! or heavy churn. This crate turns that evaluation blueprint into a
//! standing harness over the repo's seven indexes plus the full
//! [`IndoorService`](vip_tree::IndoorService) stack:
//!
//! 1. [`compile()`] lowers a declarative
//!    [`WorkloadProfile`](indoor_model::WorkloadProfile) (diurnal curves,
//!    flash crowds, Zipf keyword skew, churn storms, venue lifecycle)
//!    into a deterministic, seedable stream of
//!    [`TickEvents`](indoor_model::TickEvents) — typed requests plus
//!    `ObjectUpdate` batches. Identical seeds produce bit-identical
//!    streams at any thread count, checkable by one fingerprint.
//! 2. [`run`] replays a stream end-to-end through `IndoorService`
//!    (admission gates, result cache, churn absorption, concurrent
//!    workers) or query-only through any competitor via
//!    [`AnyIndex::answer`](indoor_bench::AnyIndex::answer), collecting
//!    per-cell metrics: p50/p99 latency, throughput, shed/timeout
//!    counts, cache hit rate, deltas/s absorbed.
//! 3. [`matrix`] + [`report`] run the standard profile set across the
//!    suite and emit `BENCH_scenarios.json` plus a human-readable
//!    crossover matrix; the `scenario_check` binary gates regressions in
//!    CI through the same engine as `bench_check`
//!    ([`indoor_bench::gate`]).

pub mod compile;
pub mod matrix;
pub mod report;
pub mod run;
pub mod zipf;

pub use compile::{compile, validate_stream, ScenarioWorld};
pub use matrix::{
    run_matrix, standard_profiles, standard_world, MatrixOutput, StandardProfile, OBJECTS_PER_VENUE,
};
pub use report::{crossover_matrix, render_json, ProfileDigest};
pub use run::{run_index, run_service, run_service_wire, Arrival, CellMetrics, RunOptions};
pub use zipf::Zipf;
