//! The standing scenario matrix: six adversarial profiles × the
//! competitor suite × the full service stack.
//!
//! `scenario_bench` runs exactly this matrix with a fixed seed and
//! commits the result as `BENCH_scenarios.json`; `scenario_check` gates
//! regressions against it. The profile set is the contract — add a
//! profile here (and a digest row will appear in the JSON), refresh the
//! baseline, and the new cell joins the gate (see DESIGN.md §12).

use crate::compile::{compile, validate_stream, ScenarioWorld};
use crate::report::ProfileDigest;
use crate::run::{run_index, run_service, CellMetrics, RunOptions};
use indoor_bench::{build_suite, SuiteOptions};
use indoor_model::{
    fingerprint_stream, AdmissionSpec, ArrivalCurve, ChurnSpec, KeywordSkew, OverloadSpec,
    QueryKind, QueryMix, TickEvents, VenueAction, VenueEvent, WorkloadProfile,
};
use indoor_synth::{presets, random_venue};
use std::sync::Arc;

/// Shared object-set size: every standard profile uses the same base
/// objects so the per-index suite is built **once** and replayed under
/// every profile.
pub const OBJECTS_PER_VENUE: u32 = 96;

/// One standard profile plus what the overload gates are expected to do
/// under it — `scenario_bench` hard-asserts these, so a refactor that
/// silently stops exercising admission control fails the bench, not
/// just a statistic.
pub struct StandardProfile {
    pub profile: WorkloadProfile,
    /// The run must observe shed rejections (`OverloadPolicy::Shed`).
    pub expect_shed: bool,
    /// The run must observe admission timeouts (`OverloadPolicy::Block`).
    pub expect_timeouts: bool,
}

/// The worlds behind the standard slots: slot 0 is the paper's
/// Melbourne Central venue (shared with `BENCH_query.json` cells, so
/// per-index numbers are comparable across the two files), slots 1–2
/// synthetic neighbours.
pub fn standard_world() -> ScenarioWorld {
    ScenarioWorld::new(vec![
        Arc::new(presets::melbourne_central().build()),
        Arc::new(random_venue(101)),
        Arc::new(random_venue(102)),
    ])
}

fn base(name: &str) -> WorkloadProfile {
    let mut p = WorkloadProfile::base(name);
    p.ticks = 32;
    p.queries_per_tick = 48;
    p.objects_per_venue = OBJECTS_PER_VENUE;
    p.repeat_pct = 25;
    p.hot_set = 48;
    p
}

/// The six standard profiles (see DESIGN.md §12 for the vocabulary).
pub fn standard_profiles() -> Vec<StandardProfile> {
    let mut out = Vec::new();

    // 1. A two-cycle diurnal day over one venue: load swells and ebbs,
    // the kiosk-repeat share keeps the cache warm.
    let mut diurnal = base("diurnal");
    diurnal.arrival = ArrivalCurve::Diurnal {
        trough_pct: 25,
        cycles: 2,
    };
    out.push(StandardProfile {
        profile: diurnal,
        expect_shed: false,
        expect_timeouts: false,
    });

    // 2. Flash crowd: an 8x spike piles onto venue 0 mid-run while its
    // neighbour holds base load; venue 0's kiosk-grade gate admits one
    // request at a time and sheds the rest. The comparative question:
    // what do p99 and shed counts look like at the victim vs. the
    // bystander? (Depth 1 because release-mode queries answer in ~5us —
    // a deeper gate never fills and the profile would stop exercising
    // shedding at all.)
    let mut flash = base("flash_crowd");
    flash.initial_slots = 2;
    flash.arrival = ArrivalCurve::Spike {
        start: 12,
        len: 6,
        magnify: 8,
    };
    flash.hot_slot = Some(0);
    flash.admission = vec![AdmissionSpec {
        slot: 0,
        max_in_flight: 1,
        policy: OverloadSpec::Shed,
    }];
    out.push(StandardProfile {
        profile: flash,
        expect_shed: true,
        expect_timeouts: false,
    });

    // 3. Zipf-skewed keyword search: 80%-ish keyword traffic over a
    // 24-term vocabulary with s=2 skew. Bare indexes answer keyword
    // queries empty (dispatch cost only) — the service row, with its
    // keyword shard and cache, is the real measurement.
    let mut zipf = base("zipf_keyword");
    zipf.keywords = Some(KeywordSkew {
        vocabulary: 24,
        exponent: 2,
    });
    let mut weights = [1u32; QueryKind::COUNT];
    weights[QueryKind::KnnKeyword.index()] = 6;
    zipf.mix = QueryMix { weights };
    out.push(StandardProfile {
        profile: zipf,
        expect_shed: false,
        expect_timeouts: false,
    });

    // 4. Churn storm: a 6x delta burst (inserts/removes/moves, keyword
    // batches interleaved) lands mid-run while queries keep arriving
    // through a Block{1us} gate of depth 1 — admission timeouts are the
    // expected symptom of updaters and queries colliding. The budget is
    // deliberately smaller than one release-mode query (~5us): a waiter
    // that collides with any holder times out, so the counter is
    // exercised on every run, not only when the scheduler is unkind.
    // The query spike rides the same window as the delta burst: enough
    // per-tick queries that the workers genuinely overlap (a constant
    // trickle of 48/tick spreads 12 queries per worker across thread
    // spawn stagger and rarely collides at all).
    let mut storm = base("churn_storm");
    storm.keywords = Some(KeywordSkew {
        vocabulary: 12,
        exponent: 1,
    });
    storm.mix = QueryMix::uniform();
    storm.arrival = ArrivalCurve::Spike {
        start: 8,
        len: 10,
        magnify: 6,
    };
    storm.hot_slot = Some(0);
    storm.churn = Some(ChurnSpec {
        base_per_tick: 60,
        curve: ArrivalCurve::Spike {
            start: 8,
            len: 10,
            magnify: 6,
        },
        insert_pct: 25,
        remove_pct: 25,
    });
    storm.admission = vec![AdmissionSpec {
        slot: 0,
        max_in_flight: 1,
        policy: OverloadSpec::Block { timeout_micros: 1 },
    }];
    out.push(StandardProfile {
        profile: storm,
        expect_shed: false,
        expect_timeouts: true,
    });

    // 5. Mixed read/write: steady plain-delta churn under a uniform
    // query mix across two venues — the "normal busy day" cell.
    let mut mixed = base("mixed_rw");
    mixed.initial_slots = 2;
    mixed.mix = QueryMix::uniform();
    mixed.keywords = Some(KeywordSkew {
        vocabulary: 12,
        exponent: 1,
    });
    mixed.churn = Some(ChurnSpec {
        base_per_tick: 30,
        curve: ArrivalCurve::Constant,
        insert_pct: 30,
        remove_pct: 30,
    });
    out.push(StandardProfile {
        profile: mixed,
        expect_shed: false,
        expect_timeouts: false,
    });

    // 6. Venue lifecycle: a venue joins mid-traffic, another retires and
    // later returns — routing, id-burning and fresh-shard build all
    // happen while the rest of the fleet keeps serving.
    let mut life = base("venue_lifecycle");
    life.initial_slots = 2;
    life.venue_events = vec![
        VenueEvent {
            tick: 8,
            action: VenueAction::Add { slot: 2 },
        },
        VenueEvent {
            tick: 16,
            action: VenueAction::Remove { slot: 1 },
        },
        VenueEvent {
            tick: 24,
            action: VenueAction::Add { slot: 1 },
        },
    ];
    out.push(StandardProfile {
        profile: life,
        expect_shed: false,
        expect_timeouts: false,
    });

    out
}

/// Everything one matrix run produces.
pub struct MatrixOutput {
    pub digests: Vec<ProfileDigest>,
    pub cells: Vec<CellMetrics>,
}

/// Compile, validate and run every standard profile: one `SVC`
/// end-to-end cell per profile, plus one query-replay cell per
/// competitor (slot-0 stream, updates skipped — bare indexes are
/// immutable snapshots). Panics if a generated stream fails validation
/// or an overload expectation is not met — a broken generator must not
/// produce a plausible-looking baseline.
pub fn run_matrix(seed: u64, compile_threads: usize, opts: &RunOptions) -> MatrixOutput {
    let world = standard_world();
    let suite = build_suite(
        world.venue(0),
        &SuiteOptions {
            with_distaw_plus: true,
            objects: Some(world.base_objects(0, OBJECTS_PER_VENUE, seed)),
            ..SuiteOptions::default()
        },
    );

    let mut digests = Vec::new();
    let mut cells = Vec::new();
    for sp in standard_profiles() {
        let profile = &sp.profile;
        let stream = compile(profile, &world, seed, compile_threads);
        validate_stream(profile, &world, &stream)
            .unwrap_or_else(|e| panic!("profile {}: invalid stream: {e}", profile.name));
        digests.push(ProfileDigest {
            name: profile.name.clone(),
            fingerprint: fingerprint_stream(&stream),
            ticks: profile.ticks,
            queries: stream.iter().map(TickEvents::queries).sum(),
            deltas: stream.iter().map(TickEvents::deltas).sum(),
        });

        let svc = run_service(profile, &world, &stream, seed, opts);
        assert!(
            !sp.expect_shed || svc.shed > 0,
            "profile {} was expected to exercise shedding: {svc:?}",
            profile.name
        );
        assert!(
            !sp.expect_timeouts || svc.timeouts > 0,
            "profile {} was expected to exercise admission timeouts: {svc:?}",
            profile.name
        );
        cells.push(svc);
        for (index, _) in &suite {
            cells.push(run_index(profile, index, &stream));
        }
    }
    MatrixOutput { digests, cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_profiles_compile_validate_and_fingerprint_stably() {
        let world = standard_world();
        for sp in standard_profiles() {
            let a = compile(&sp.profile, &world, 1234, 1);
            validate_stream(&sp.profile, &world, &a)
                .unwrap_or_else(|e| panic!("{}: {e}", sp.profile.name));
            let b = compile(&sp.profile, &world, 1234, 4);
            assert_eq!(
                fingerprint_stream(&a),
                fingerprint_stream(&b),
                "{} not thread-invariant",
                sp.profile.name
            );
        }
    }

    #[test]
    fn profile_names_are_unique() {
        let profiles = standard_profiles();
        let mut names: Vec<&str> = profiles.iter().map(|p| p.profile.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), profiles.len());
    }
}
