//! Machine- and human-readable outputs of a matrix run.
//!
//! [`render_json`] emits the `BENCH_scenarios.json` schema consumed by
//! `scenario_check`:
//!
//! ```json
//! {
//!   "suite": "scenario-matrix",
//!   "seed": 42,
//!   "host_cores": 1,
//!   "workers": 4,
//!   "profiles": [ {"name": "...", "fingerprint": "0x...", ...} ],
//!   "results":  [ {"profile": "...", "index": "...", "p50_us": ...} ]
//! }
//! ```
//!
//! Fingerprints are hex **strings**, not numbers — a u64 does not
//! round-trip through f64 JSON parsing. [`crossover_matrix`] renders the
//! comparative table (which index wins where, and what overload did to
//! the service cells).

use crate::run::CellMetrics;
use std::fmt::Write as _;

/// Identity of one compiled profile stream: size plus the order- and
/// content-sensitive fingerprint `scenario_check` compares exactly when
/// seeds match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileDigest {
    pub name: String,
    pub fingerprint: u64,
    pub ticks: u32,
    pub queries: usize,
    pub deltas: usize,
}

/// Render the committed JSON document.
pub fn render_json(
    seed: u64,
    workers: usize,
    digests: &[ProfileDigest],
    cells: &[CellMetrics],
) -> String {
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"suite\": \"scenario-matrix\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"host_cores\": {host_cores},");
    let _ = writeln!(s, "  \"workers\": {workers},");
    s.push_str("  \"profiles\": [\n");
    for (i, d) in digests.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"fingerprint\": \"0x{:016x}\", \"ticks\": {}, \"queries\": {}, \"deltas\": {}}}",
            d.name, d.fingerprint, d.ticks, d.queries, d.deltas
        );
        s.push_str(if i + 1 < digests.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"profile\": \"{}\", \"index\": \"{}\", \"requests\": {}, \"answered\": {}, \
             \"dropped\": {}, \"shed\": {}, \"timeouts\": {}, \"p50_us\": {:.3}, \
             \"p99_us\": {:.3}, \"p999_us\": {:.3}, \"max_us\": {:.3}, \"qps\": {:.1}, \
             \"cache_hit_rate\": {:.4}, \"deltas\": {}, \"deltas_per_sec\": {:.1}, \
             \"wall_ms\": {:.2}, \"phase_descent_us\": {:.3}, \"phase_leaf_fold_us\": {:.3}, \
             \"phase_heap_us\": {:.3}}}",
            c.profile,
            c.index,
            c.requests,
            c.answered,
            c.dropped,
            c.shed,
            c.timeouts,
            c.p50_us,
            c.p99_us,
            c.p999_us,
            c.max_us,
            c.qps,
            c.cache_hit_rate,
            c.deltas,
            c.deltas_per_sec,
            c.wall_ms,
            c.phase_descent_us,
            c.phase_leaf_fold_us,
            c.phase_heap_us
        );
        s.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Render the human-readable crossover matrix: p50 latency per
/// (profile × index) with the per-profile winner starred, then the
/// service-cell detail lines (throughput, overload, cache, churn).
pub fn crossover_matrix(cells: &[CellMetrics]) -> String {
    let mut profiles: Vec<&str> = Vec::new();
    let mut indexes: Vec<&str> = Vec::new();
    for c in cells {
        if !profiles.contains(&c.profile.as_str()) {
            profiles.push(&c.profile);
        }
        if !indexes.contains(&c.index.as_str()) {
            indexes.push(&c.index);
        }
    }
    let cell = |p: &str, ix: &str| {
        cells
            .iter()
            .find(|c| c.profile == p && c.index == ix)
            .map(|c| c.p50_us)
    };

    let mut s = String::new();
    s.push_str("Crossover matrix — p50 us per request (* = fastest for the profile)\n\n");
    let _ = write!(s, "{:<16}", "profile");
    for ix in &indexes {
        let _ = write!(s, "{ix:>12}");
    }
    s.push('\n');
    for p in &profiles {
        let best = indexes
            .iter()
            .filter_map(|ix| cell(p, ix))
            .fold(f64::INFINITY, f64::min);
        let _ = write!(s, "{p:<16}");
        for ix in &indexes {
            match cell(p, ix) {
                Some(us) => {
                    let star = if us == best { "*" } else { "" };
                    let _ = write!(s, "{:>12}", format!("{us:.1}{star}"));
                }
                None => {
                    let _ = write!(s, "{:>12}", "-");
                }
            }
        }
        s.push('\n');
    }

    s.push_str("\nService cells (end-to-end: admission + cache + churn)\n\n");
    let _ = writeln!(
        s,
        "{:<16} {:>9} {:>8} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9} {:>11}",
        "profile",
        "qps",
        "p99 us",
        "p999 us",
        "max us",
        "shed",
        "timeout",
        "dropped",
        "hit rate",
        "deltas/s"
    );
    for c in cells.iter().filter(|c| c.index == "SVC") {
        let _ = writeln!(
            s,
            "{:<16} {:>9.0} {:>8.1} {:>9.1} {:>9.1} {:>8} {:>8} {:>8} {:>8.1}% {:>11.0}",
            c.profile,
            c.qps,
            c.p99_us,
            c.p999_us,
            c.max_us,
            c.shed,
            c.timeouts,
            c.dropped,
            c.cache_hit_rate * 100.0,
            c.deltas_per_sec
        );
    }

    // Phase attribution: where traced queries spent their time, per
    // service cell — the flash-crowd vs churn-storm comparison the
    // sampled engine traces exist to answer.
    s.push_str("\nPhase attribution — mean sampled engine-phase time (us)\n\n");
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>10} {:>10}",
        "profile", "descent", "leaf fold", "heap"
    );
    for c in cells.iter().filter(|c| c.index == "SVC") {
        let _ = writeln!(
            s,
            "{:<16} {:>10.2} {:>10.2} {:>10.2}",
            c.profile, c.phase_descent_us, c.phase_leaf_fold_us, c.phase_heap_us
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_model::json::{self, Json};

    fn cell(profile: &str, index: &str, p50: f64) -> CellMetrics {
        CellMetrics {
            profile: profile.into(),
            index: index.into(),
            requests: 10,
            answered: 10,
            dropped: 0,
            shed: 1,
            timeouts: 2,
            p50_us: p50,
            p99_us: p50 * 3.0,
            p999_us: p50 * 9.0,
            max_us: p50 * 20.0,
            qps: 1000.0,
            cache_hit_rate: 0.25,
            deltas: 5,
            deltas_per_sec: 50.0,
            wall_ms: 10.0,
            phase_descent_us: 4.5,
            phase_leaf_fold_us: 1.25,
            phase_heap_us: 0.5,
        }
    }

    #[test]
    fn json_round_trips_through_the_vendored_parser() {
        let digests = [ProfileDigest {
            name: "diurnal".into(),
            fingerprint: 0xdead_beef_cafe_f00d,
            ticks: 32,
            queries: 1536,
            deltas: 0,
        }];
        let cells = [cell("diurnal", "SVC", 21.5), cell("diurnal", "VIP", 14.0)];
        let text = render_json(42, 4, &digests, &cells);
        let doc = json::parse(&text).expect("parses");
        assert_eq!(doc.get("seed").and_then(Json::as_usize), Some(42));
        let profiles = doc.get("profiles").and_then(Json::as_arr).unwrap();
        assert_eq!(
            profiles[0].get("fingerprint").and_then(Json::as_str),
            Some("0xdeadbeefcafef00d")
        );
        let results = doc.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].get("index").and_then(Json::as_str), Some("VIP"));
        assert!(results[0].get("p50_us").and_then(Json::as_f64).unwrap() > 21.0);
    }

    #[test]
    fn crossover_stars_the_winner_and_details_service_cells() {
        let cells = [
            cell("diurnal", "SVC", 21.5),
            cell("diurnal", "VIP", 14.0),
            cell("diurnal", "GT", 19.0),
        ];
        let m = crossover_matrix(&cells);
        assert!(m.contains("14.0*"), "winner starred:\n{m}");
        assert!(!m.contains("19.0*"), "loser unstarred:\n{m}");
        assert!(m.contains("Service cells"), "{m}");
        assert!(m.contains("25.0%"), "hit rate rendered:\n{m}");
    }
}
