//! Stream runners: replay a compiled scenario against the full
//! [`IndoorService`] stack or query-only against one bare index.
//!
//! [`run_service`] is the end-to-end cell: per-venue shards behind
//! admission gates, the result cache, WAL-less volatile mutation paths,
//! and `opts.workers` concurrent client threads per tick with
//! bounded-retry backoff on overload — the closed-loop client a real
//! front-end would be. Updates of a tick apply **concurrently** with its
//! queries (that overlap is the point of the churn profiles).
//!
//! [`run_index`] is the comparative cell: the same stream's slot-0
//! queries replayed serially through [`AnyIndex::answer`] — no cache, no
//! admission, no churn (updates are skipped; every competitor index is
//! an immutable snapshot). Keyword queries answer empty on plain
//! indexes, so `zipf_keyword` rows for bare indexes measure dispatch
//! cost only; the service row is the real keyword comparison.

use crate::compile::ScenarioWorld;
use indoor_bench::AnyIndex;
use indoor_model::OverloadSpec;
use indoor_model::{
    KeywordSkew, ObjectDelta, QueryRequest, ScenarioEvent, TickEvents, VenueId, WorkloadProfile,
};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vip_tree::{AdmissionConfig, IndoorService, OverloadPolicy, ServiceError, ShardConfig};

/// Client behaviour of [`run_service`].
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Concurrent query workers per tick.
    pub workers: usize,
    /// Retries after an `Overloaded`/`Timeout` rejection before the
    /// request is dropped.
    pub retries: u32,
    /// Sleep between retries (a closed-loop client's think time).
    pub backoff: Duration,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            workers: 4,
            retries: 64,
            backoff: Duration::from_micros(20),
        }
    }
}

/// One (profile × index) cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    pub profile: String,
    pub index: String,
    /// Query events replayed.
    pub requests: u64,
    /// Requests that got an answer (possibly after retries).
    pub answered: u64,
    /// Requests dropped after exhausting retries.
    pub dropped: u64,
    /// Overload rejections observed at the admission gate (each retry
    /// that bounces counts — this is gate pressure, not request count).
    pub shed: u64,
    /// Admission timeouts observed (Block policy).
    pub timeouts: u64,
    pub p50_us: f64,
    pub p99_us: f64,
    /// Answered queries per wall-clock second.
    pub qps: f64,
    /// Result-cache hit rate over the run (0 for bare indexes).
    pub cache_hit_rate: f64,
    /// Object deltas absorbed (0 for bare indexes — updates skipped).
    pub deltas: u64,
    pub deltas_per_sec: f64,
    pub wall_ms: f64,
}

fn percentile(sorted_us: &[f64], pct: usize) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    sorted_us[(sorted_us.len() - 1) * pct / 100]
}

#[allow(clippy::too_many_arguments)]
fn finish(
    profile: &WorkloadProfile,
    index: &str,
    mut lat_us: Vec<f64>,
    wall: Duration,
    answered: u64,
    dropped: u64,
    shed: u64,
    timeouts: u64,
    cache_hit_rate: f64,
    deltas: u64,
) -> CellMetrics {
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let secs = wall.as_secs_f64().max(1e-9);
    CellMetrics {
        profile: profile.name.clone(),
        index: index.to_string(),
        requests: answered + dropped,
        answered,
        dropped,
        shed,
        timeouts,
        p50_us: percentile(&lat_us, 50),
        p99_us: percentile(&lat_us, 99),
        qps: answered as f64 / secs,
        cache_hit_rate,
        deltas,
        deltas_per_sec: if deltas > 0 {
            deltas as f64 / secs
        } else {
            0.0
        },
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

/// Base keyword labels: object `i` carries `kw{i % vocabulary}` — every
/// vocabulary rank is represented, matching the Zipf draws of the
/// compiled keyword queries.
fn labelled_base(
    objects: &[indoor_model::IndoorPoint],
    vocabulary: u32,
) -> Vec<(indoor_model::IndoorPoint, Vec<String>)> {
    objects
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, vec![KeywordSkew::label(i as u32 % vocabulary)]))
        .collect()
}

fn admission_for(profile: &WorkloadProfile, slot: u32) -> AdmissionConfig {
    profile
        .admission
        .iter()
        .find(|a| a.slot == slot)
        .map(|a| AdmissionConfig {
            max_in_flight: a.max_in_flight as usize,
            policy: match a.policy {
                OverloadSpec::Shed => OverloadPolicy::Shed,
                OverloadSpec::Block { timeout_micros } => OverloadPolicy::Block {
                    timeout: Duration::from_micros(timeout_micros),
                },
            },
        })
        .unwrap_or_default()
}

fn register_slot(
    service: &IndoorService,
    world: &ScenarioWorld,
    profile: &WorkloadProfile,
    slot: u32,
    seed: u64,
) -> VenueId {
    let objects = world.base_objects(slot, profile.objects_per_venue, seed);
    let keywords = match &profile.keywords {
        Some(skew) => labelled_base(&objects, skew.vocabulary),
        None => Vec::new(),
    };
    service
        .add_venue(
            world.venue(slot).clone(),
            ShardConfig {
                threads: 1,
                objects,
                keywords,
                admission: admission_for(profile, slot),
                ..ShardConfig::default()
            },
        )
        .expect("scenario venue build")
}

/// Replay `stream` end-to-end through a fresh volatile [`IndoorService`]
/// built from the world's slots (objects + keyword labels + admission
/// gates from the profile). Returns the `SVC` cell.
pub fn run_service(
    profile: &WorkloadProfile,
    world: &ScenarioWorld,
    stream: &[TickEvents],
    seed: u64,
    opts: &RunOptions,
) -> CellMetrics {
    let service = IndoorService::new();
    let mut slot_ids: Vec<Option<VenueId>> = vec![None; world.slots() as usize];
    for slot in 0..profile.initial_slots {
        slot_ids[slot as usize] = Some(register_slot(&service, world, profile, slot, seed));
    }

    let lat = Mutex::new(Vec::<f64>::new());
    let answered_dropped = Mutex::new((0u64, 0u64));
    let mut deltas_applied = 0u64;
    let t0 = Instant::now();
    for te in stream {
        // Lifecycle first, serially: the compiler ordered each tick as
        // adds/removes, then queries, then updates.
        let mut queries: Vec<(VenueId, &QueryRequest)> = Vec::new();
        let mut updates: Vec<(VenueId, &ScenarioEvent)> = Vec::new();
        for ev in &te.events {
            match ev {
                ScenarioEvent::AddVenue { slot } => {
                    slot_ids[*slot as usize] =
                        Some(register_slot(&service, world, profile, *slot, seed));
                }
                ScenarioEvent::RemoveVenue { slot } => {
                    let id = slot_ids[*slot as usize]
                        .take()
                        .expect("remove of live slot");
                    service.remove_venue(id).expect("remove venue");
                }
                ScenarioEvent::Query { slot, req } => {
                    queries.push((slot_ids[*slot as usize].expect("query to live slot"), req));
                }
                ScenarioEvent::Updates { slot, .. } => {
                    updates.push((slot_ids[*slot as usize].expect("update to live slot"), ev));
                }
            }
        }

        // Queries fan out over workers; updates apply concurrently on
        // this thread — churn vs. serving overlap is what the storm
        // profiles measure.
        let workers = opts.workers.max(1);
        let chunk = queries.len().div_ceil(workers).max(1);
        let (service_ref, lat_ref, ad_ref) = (&service, &lat, &answered_dropped);
        std::thread::scope(|scope| {
            for part in queries.chunks(chunk) {
                scope.spawn(move || {
                    let mut local_lat = Vec::with_capacity(part.len());
                    let (mut ok, mut gone) = (0u64, 0u64);
                    for (venue, req) in part {
                        let t = Instant::now();
                        let mut attempts = 0;
                        loop {
                            match service_ref.execute(*venue, req) {
                                Ok(_) => {
                                    local_lat.push(t.elapsed().as_secs_f64() * 1e6);
                                    ok += 1;
                                    break;
                                }
                                Err(
                                    ServiceError::Overloaded { .. } | ServiceError::Timeout { .. },
                                ) if attempts < opts.retries => {
                                    attempts += 1;
                                    std::thread::sleep(opts.backoff);
                                }
                                Err(_) => {
                                    gone += 1;
                                    break;
                                }
                            }
                        }
                    }
                    lat_ref.lock().unwrap().extend(local_lat);
                    let mut ad = ad_ref.lock().unwrap();
                    ad.0 += ok;
                    ad.1 += gone;
                });
            }
            for (venue, ev) in &updates {
                let ScenarioEvent::Updates { updates, .. } = ev else {
                    unreachable!("filtered above");
                };
                if updates.iter().all(|u| u.labels.is_empty()) {
                    let deltas: Vec<ObjectDelta> = updates.iter().map(|u| u.delta).collect();
                    service
                        .update_objects(*venue, &deltas)
                        .expect("valid plain batch");
                } else {
                    service
                        .update_keyword_objects(*venue, updates)
                        .expect("valid keyword batch");
                }
                deltas_applied += updates.len() as u64;
            }
        });
    }
    let wall = t0.elapsed();

    let stats = service.stats();
    let (answered, dropped) = *answered_dropped.lock().unwrap();
    finish(
        profile,
        "SVC",
        lat.into_inner().unwrap(),
        wall,
        answered,
        dropped,
        stats.shed,
        stats.admission_timeouts,
        stats.hit_rate(),
        stats.deltas_absorbed,
    )
}

/// Replay the stream's slot-0 queries serially through one bare index.
pub fn run_index(
    profile: &WorkloadProfile,
    index: &AnyIndex,
    stream: &[TickEvents],
) -> CellMetrics {
    let mut lat = Vec::new();
    let t0 = Instant::now();
    for te in stream {
        for ev in &te.events {
            if let ScenarioEvent::Query { slot: 0, req } = ev {
                let t = Instant::now();
                std::hint::black_box(index.answer(req));
                lat.push(t.elapsed().as_secs_f64() * 1e6);
            }
        }
    }
    let wall = t0.elapsed();
    let answered = lat.len() as u64;
    finish(profile, index.name(), lat, wall, answered, 0, 0, 0, 0.0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, validate_stream};
    use indoor_bench::{build_suite, SuiteOptions};
    use indoor_model::{AdmissionSpec, ArrivalCurve};
    use indoor_synth::random_venue;
    use std::sync::Arc;

    #[test]
    fn service_run_answers_everything_on_an_unbounded_shard() {
        let world = ScenarioWorld::new(vec![Arc::new(random_venue(70))]);
        let mut p = WorkloadProfile::base("smoke");
        p.ticks = 4;
        p.queries_per_tick = 8;
        let stream = compile(&p, &world, 3, 1);
        validate_stream(&p, &world, &stream).unwrap();
        let m = run_service(&p, &world, &stream, 3, &RunOptions::default());
        assert_eq!(m.index, "SVC");
        assert_eq!(m.requests, 32);
        assert_eq!(m.answered, 32);
        assert_eq!((m.dropped, m.shed, m.timeouts), (0, 0, 0));
        assert!(m.p50_us > 0.0 && m.p99_us >= m.p50_us);
        assert!(m.qps > 0.0);
    }

    #[test]
    fn overloaded_spike_sheds_but_retries_answer() {
        let world = ScenarioWorld::new(vec![Arc::new(random_venue(71))]);
        let mut p = WorkloadProfile::base("spiky");
        p.ticks = 6;
        p.queries_per_tick = 40;
        p.arrival = ArrivalCurve::Spike {
            start: 2,
            len: 2,
            magnify: 6,
        };
        p.hot_slot = Some(0);
        p.admission = vec![AdmissionSpec {
            slot: 0,
            max_in_flight: 1,
            policy: OverloadSpec::Shed,
        }];
        let stream = compile(&p, &world, 9, 1);
        let m = run_service(&p, &world, &stream, 9, &RunOptions::default());
        assert!(m.shed > 0, "gate never pushed back: {m:?}");
        assert!(
            m.answered + m.dropped == m.requests,
            "request accounting: {m:?}"
        );
        assert!(m.answered > 0);
    }

    #[test]
    fn index_run_replays_slot_zero_queries() {
        let world = ScenarioWorld::new(vec![Arc::new(random_venue(72))]);
        let mut p = WorkloadProfile::base("bare");
        p.ticks = 3;
        p.queries_per_tick = 6;
        let stream = compile(&p, &world, 4, 1);
        let suite = build_suite(
            world.venue(0),
            &SuiteOptions {
                objects: Some(world.base_objects(0, p.objects_per_venue, 4)),
                ..SuiteOptions::default()
            },
        );
        for (index, _) in &suite {
            let m = run_index(&p, index, &stream);
            assert_eq!(m.requests, 18, "{}", index.name());
            assert_eq!(m.answered, 18);
            assert_eq!(m.deltas, 0);
        }
    }
}
