//! Stream runners: replay a compiled scenario against the full
//! [`IndoorService`] stack or query-only against one bare index.
//!
//! [`run_service`] is the end-to-end cell: per-venue shards behind
//! admission gates, the result cache, WAL-less volatile mutation paths,
//! and `opts.workers` concurrent client threads per tick with
//! bounded-retry backoff on overload — the closed-loop client a real
//! front-end would be. Updates of a tick apply **concurrently** with its
//! queries (that overlap is the point of the churn profiles).
//!
//! [`run_index`] is the comparative cell: the same stream's slot-0
//! queries replayed serially through [`AnyIndex::answer`] — no cache, no
//! admission, no churn (updates are skipped; every competitor index is
//! an immutable snapshot). Keyword queries answer empty on plain
//! indexes, so `zipf_keyword` rows for bare indexes measure dispatch
//! cost only; the service row is the real keyword comparison.

use crate::compile::ScenarioWorld;
use indoor_bench::AnyIndex;
use indoor_model::metrics::{MetricValue, MetricsSnapshot};
use indoor_model::OverloadSpec;
use indoor_model::{
    KeywordSkew, ObjectDelta, QueryRequest, ScenarioEvent, TickEvents, VenueId, WorkloadProfile,
};
use indoor_net::{NetClient, NetError, NetServer};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vip_tree::telemetry::{HistSnapshot, Histogram};
use vip_tree::{
    AdmissionConfig, IndoorService, OverloadPolicy, RetryPolicy, ServiceError, ShardConfig,
};

/// How a tick's queries arrive at the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Each worker issues its next query the moment the previous answer
    /// lands — latency is measured from the send. A slow service slows
    /// the offered load down with it (the classic closed-loop blind
    /// spot).
    Closed,
    /// Queries are stamped with scheduled send times at a fixed
    /// aggregate rate and latency is measured **from the schedule**, so
    /// queueing delay the service causes shows up in the percentiles
    /// instead of being coordinated-omitted away.
    Open {
        /// Aggregate scheduled arrivals per second across all workers.
        qps: f64,
    },
}

/// Client behaviour of [`run_service`] / [`run_service_wire`].
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Concurrent query workers per tick.
    pub workers: usize,
    /// Reaction to `Overloaded`/`Timeout` rejections — the same
    /// [`RetryPolicy`] the network client uses, so closed-loop scenario
    /// clients and wire clients push back identically.
    pub retry: RetryPolicy,
    /// Closed-loop (default) or paced open-loop arrivals.
    pub arrival: Arrival,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            workers: 4,
            retry: RetryPolicy::default(),
            arrival: Arrival::Closed,
        }
    }
}

/// Per-worker query assignment for one tick: `(scheduled offset, venue,
/// request)`. Closed-loop splits into contiguous chunks (no schedule);
/// open-loop round-robins so every worker's due times interleave at the
/// aggregate rate.
fn assign<'a, V: Copy>(
    queries: &[(V, &'a QueryRequest)],
    workers: usize,
    arrival: Arrival,
) -> Vec<Vec<(Option<Duration>, V, &'a QueryRequest)>> {
    let mut parts = vec![Vec::new(); workers];
    match arrival {
        Arrival::Closed => {
            let chunk = queries.len().div_ceil(workers).max(1);
            for (i, (v, r)) in queries.iter().enumerate() {
                parts[i / chunk].push((None, *v, *r));
            }
        }
        Arrival::Open { qps } => {
            let interval = Duration::from_secs_f64(1.0 / qps.max(1e-9));
            for (i, (v, r)) in queries.iter().enumerate() {
                parts[i % workers].push((Some(interval * i as u32), *v, *r));
            }
        }
    }
    parts
}

/// Wait for `due` (if scheduled) and return the instant latency is
/// measured from: the schedule for open-loop, now for closed-loop.
fn departure(tick_t0: Instant, due: Option<Duration>) -> Instant {
    match due {
        Some(d) => {
            let target = tick_t0 + d;
            if let Some(wait) = target.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            target
        }
        None => Instant::now(),
    }
}

/// One (profile × index) cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    pub profile: String,
    pub index: String,
    /// Query events replayed.
    pub requests: u64,
    /// Requests that got an answer (possibly after retries).
    pub answered: u64,
    /// Requests dropped after exhausting retries.
    pub dropped: u64,
    /// Overload rejections observed at the admission gate (each retry
    /// that bounces counts — this is gate pressure, not request count).
    pub shed: u64,
    /// Admission timeouts observed (Block policy).
    pub timeouts: u64,
    pub p50_us: f64,
    pub p99_us: f64,
    /// True tail quantile from the latency histogram — every answered
    /// request is a sample, not a sorted sub-sample.
    pub p999_us: f64,
    /// Exact worst answered latency of the run (µs).
    pub max_us: f64,
    /// Answered queries per wall-clock second.
    pub qps: f64,
    /// Result-cache hit rate over the run (0 for bare indexes).
    pub cache_hit_rate: f64,
    /// Object deltas absorbed (0 for bare indexes — updates skipped).
    pub deltas: u64,
    pub deltas_per_sec: f64,
    pub wall_ms: f64,
    /// Mean sampled engine-phase times (µs) attributed by the service's
    /// query traces: tree descent, own-leaf grid fold, heap drain. Zero
    /// for bare-index cells (no service, nothing traced).
    pub phase_descent_us: f64,
    pub phase_leaf_fold_us: f64,
    pub phase_heap_us: f64,
}

/// Mean of every `Histogram` series named `name` in the snapshot (µs),
/// folded across venues. Zero when nothing was recorded.
fn phase_mean_us(snap: &MetricsSnapshot, name: &str) -> f64 {
    let (mut sum, mut count) = (0u64, 0u64);
    for s in snap.series.iter().filter(|s| s.name == name) {
        if let MetricValue::Histogram {
            sum: s, count: c, ..
        } = s.value
        {
            sum += s;
            count += c;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

/// The three engine-phase attribution means of a service run.
fn phase_attribution(snap: &MetricsSnapshot) -> [f64; 3] {
    [
        phase_mean_us(snap, "indoor_phase_descent_us"),
        phase_mean_us(snap, "indoor_phase_leaf_fold_us"),
        phase_mean_us(snap, "indoor_phase_heap_us"),
    ]
}

#[allow(clippy::too_many_arguments)]
fn finish(
    profile: &WorkloadProfile,
    index: &str,
    lat_ns: HistSnapshot,
    phases: [f64; 3],
    wall: Duration,
    answered: u64,
    dropped: u64,
    shed: u64,
    timeouts: u64,
    cache_hit_rate: f64,
    deltas: u64,
) -> CellMetrics {
    let secs = wall.as_secs_f64().max(1e-9);
    CellMetrics {
        profile: profile.name.clone(),
        index: index.to_string(),
        requests: answered + dropped,
        answered,
        dropped,
        shed,
        timeouts,
        p50_us: lat_ns.p50() as f64 / 1e3,
        p99_us: lat_ns.p99() as f64 / 1e3,
        p999_us: lat_ns.p999() as f64 / 1e3,
        max_us: lat_ns.max() as f64 / 1e3,
        qps: answered as f64 / secs,
        cache_hit_rate,
        deltas,
        deltas_per_sec: if deltas > 0 {
            deltas as f64 / secs
        } else {
            0.0
        },
        wall_ms: wall.as_secs_f64() * 1e3,
        phase_descent_us: phases[0],
        phase_leaf_fold_us: phases[1],
        phase_heap_us: phases[2],
    }
}

/// Base keyword labels: object `i` carries `kw{i % vocabulary}` — every
/// vocabulary rank is represented, matching the Zipf draws of the
/// compiled keyword queries.
fn labelled_base(
    objects: &[indoor_model::IndoorPoint],
    vocabulary: u32,
) -> Vec<(indoor_model::IndoorPoint, Vec<String>)> {
    objects
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, vec![KeywordSkew::label(i as u32 % vocabulary)]))
        .collect()
}

fn admission_for(profile: &WorkloadProfile, slot: u32) -> AdmissionConfig {
    profile
        .admission
        .iter()
        .find(|a| a.slot == slot)
        .map(|a| AdmissionConfig {
            max_in_flight: a.max_in_flight as usize,
            policy: match a.policy {
                OverloadSpec::Shed => OverloadPolicy::Shed,
                OverloadSpec::Block { timeout_micros } => OverloadPolicy::Block {
                    timeout: Duration::from_micros(timeout_micros),
                },
            },
        })
        .unwrap_or_default()
}

fn register_slot(
    service: &IndoorService,
    world: &ScenarioWorld,
    profile: &WorkloadProfile,
    slot: u32,
    seed: u64,
) -> VenueId {
    let objects = world.base_objects(slot, profile.objects_per_venue, seed);
    let keywords = match &profile.keywords {
        Some(skew) => labelled_base(&objects, skew.vocabulary),
        None => Vec::new(),
    };
    service
        .add_venue(
            world.venue(slot).clone(),
            ShardConfig {
                threads: 1,
                objects,
                keywords,
                admission: admission_for(profile, slot),
                ..ShardConfig::default()
            },
        )
        .expect("scenario venue build")
}

/// Replay `stream` end-to-end through a fresh volatile [`IndoorService`]
/// built from the world's slots (objects + keyword labels + admission
/// gates from the profile). Returns the `SVC` cell.
pub fn run_service(
    profile: &WorkloadProfile,
    world: &ScenarioWorld,
    stream: &[TickEvents],
    seed: u64,
    opts: &RunOptions,
) -> CellMetrics {
    let service = IndoorService::new();
    let mut slot_ids: Vec<Option<VenueId>> = vec![None; world.slots() as usize];
    for slot in 0..profile.initial_slots {
        slot_ids[slot as usize] = Some(register_slot(&service, world, profile, slot, seed));
    }

    // Latencies land in a lock-free histogram (nanosecond resolution —
    // bare quantities, scaled to µs at reporting): workers record
    // concurrently with no mutex and no per-run sample vector.
    let lat = Histogram::new();
    let answered_dropped = Mutex::new((0u64, 0u64));
    let mut deltas_applied = 0u64;
    let t0 = Instant::now();
    for te in stream {
        // Lifecycle first, serially: the compiler ordered each tick as
        // adds/removes, then queries, then updates.
        let mut queries: Vec<(VenueId, &QueryRequest)> = Vec::new();
        let mut updates: Vec<(VenueId, &ScenarioEvent)> = Vec::new();
        for ev in &te.events {
            match ev {
                ScenarioEvent::AddVenue { slot } => {
                    slot_ids[*slot as usize] =
                        Some(register_slot(&service, world, profile, *slot, seed));
                }
                ScenarioEvent::RemoveVenue { slot } => {
                    let id = slot_ids[*slot as usize]
                        .take()
                        .expect("remove of live slot");
                    service.remove_venue(id).expect("remove venue");
                }
                ScenarioEvent::Query { slot, req } => {
                    queries.push((slot_ids[*slot as usize].expect("query to live slot"), req));
                }
                ScenarioEvent::Updates { slot, .. } => {
                    updates.push((slot_ids[*slot as usize].expect("update to live slot"), ev));
                }
            }
        }

        // Queries fan out over workers; updates apply concurrently on
        // this thread — churn vs. serving overlap is what the storm
        // profiles measure.
        let workers = opts.workers.max(1);
        let parts = assign(&queries, workers, opts.arrival);
        let tick_t0 = Instant::now();
        let (service_ref, lat_ref, ad_ref) = (&service, &lat, &answered_dropped);
        std::thread::scope(|scope| {
            for part in parts {
                scope.spawn(move || {
                    let (mut ok, mut gone) = (0u64, 0u64);
                    for (due, venue, req) in part {
                        let sched = departure(tick_t0, due);
                        let outcome = opts.retry.run(
                            |e| {
                                matches!(
                                    e,
                                    ServiceError::Overloaded { .. } | ServiceError::Timeout { .. }
                                )
                            },
                            || service_ref.execute(venue, req),
                        );
                        match outcome {
                            Ok(_) => {
                                lat_ref.record(sched.elapsed().as_nanos() as u64);
                                ok += 1;
                            }
                            Err(_) => gone += 1,
                        }
                    }
                    let mut ad = ad_ref.lock().unwrap();
                    ad.0 += ok;
                    ad.1 += gone;
                });
            }
            for (venue, ev) in &updates {
                let ScenarioEvent::Updates { updates, .. } = ev else {
                    unreachable!("filtered above");
                };
                if updates.iter().all(|u| u.labels.is_empty()) {
                    let deltas: Vec<ObjectDelta> = updates.iter().map(|u| u.delta).collect();
                    service
                        .update_objects(*venue, &deltas)
                        .expect("valid plain batch");
                } else {
                    service
                        .update_keyword_objects(*venue, updates)
                        .expect("valid keyword batch");
                }
                deltas_applied += updates.len() as u64;
            }
        });
    }
    let wall = t0.elapsed();

    let stats = service.stats();
    let phases = phase_attribution(&service.metrics_snapshot());
    let (answered, dropped) = *answered_dropped.lock().unwrap();
    finish(
        profile,
        "SVC",
        lat.snapshot(),
        phases,
        wall,
        answered,
        dropped,
        stats.shed,
        stats.admission_timeouts,
        stats.hit_rate(),
        stats.deltas_absorbed,
    )
}

/// Replay `stream` through a loopback [`NetServer`] over the real wire
/// protocol — the same replay as [`run_service`] but with every
/// lifecycle event, query, and update crossing a TCP connection, so the
/// cell prices framing, syscalls, and the server's batch coalescing on
/// top of the service. Each worker holds its own pipelined connection;
/// admission rejections come back as typed wire errors and retry
/// client-side with the same policy the in-process runner uses.
pub fn run_service_wire(
    profile: &WorkloadProfile,
    world: &ScenarioWorld,
    stream: &[TickEvents],
    seed: u64,
    opts: &RunOptions,
) -> CellMetrics {
    let service = std::sync::Arc::new(IndoorService::new());
    let server = NetServer::bind(service.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    let mut admin = NetClient::connect(addr)
        .expect("admin connection")
        .with_retry(opts.retry);
    let workers = opts.workers.max(1);
    let mut clients: Vec<NetClient> = (0..workers)
        .map(|_| {
            NetClient::connect(addr)
                .expect("worker connection")
                .with_retry(opts.retry)
        })
        .collect();

    let register = |admin: &mut NetClient, slot: u32| -> u32 {
        let objects = world.base_objects(slot, profile.objects_per_venue, seed);
        let keywords = match &profile.keywords {
            Some(skew) => labelled_base(&objects, skew.vocabulary),
            None => Vec::new(),
        };
        admin
            .add_venue(
                world.venue(slot),
                &ShardConfig {
                    threads: 1,
                    objects,
                    keywords,
                    admission: admission_for(profile, slot),
                    ..ShardConfig::default()
                },
            )
            .expect("scenario venue build over the wire")
    };

    let mut slot_ids: Vec<Option<u32>> = vec![None; world.slots() as usize];
    for slot in 0..profile.initial_slots {
        slot_ids[slot as usize] = Some(register(&mut admin, slot));
    }

    let lat = Histogram::new();
    let answered_dropped = Mutex::new((0u64, 0u64));
    let t0 = Instant::now();
    for te in stream {
        let mut queries: Vec<(u32, &QueryRequest)> = Vec::new();
        let mut updates: Vec<(u32, &ScenarioEvent)> = Vec::new();
        for ev in &te.events {
            match ev {
                ScenarioEvent::AddVenue { slot } => {
                    slot_ids[*slot as usize] = Some(register(&mut admin, *slot));
                }
                ScenarioEvent::RemoveVenue { slot } => {
                    let id = slot_ids[*slot as usize]
                        .take()
                        .expect("remove of live slot");
                    admin.remove_venue(id).expect("remove venue over the wire");
                }
                ScenarioEvent::Query { slot, req } => {
                    queries.push((slot_ids[*slot as usize].expect("query to live slot"), req));
                }
                ScenarioEvent::Updates { slot, .. } => {
                    updates.push((slot_ids[*slot as usize].expect("update to live slot"), ev));
                }
            }
        }

        let parts = assign(&queries, workers, opts.arrival);
        let tick_t0 = Instant::now();
        let (lat_ref, ad_ref) = (&lat, &answered_dropped);
        std::thread::scope(|scope| {
            for (client, part) in clients.iter_mut().zip(parts) {
                scope.spawn(move || {
                    let (mut ok, mut gone) = (0u64, 0u64);
                    for (due, venue, req) in part {
                        let sched = departure(tick_t0, due);
                        // NetClient::query retries retryable wire errors
                        // under the connection's policy already.
                        match client.query(venue, req) {
                            Ok(_) => {
                                lat_ref.record(sched.elapsed().as_nanos() as u64);
                                ok += 1;
                            }
                            Err(NetError::Server(_)) => gone += 1,
                            Err(e) => panic!("wire replay transport failure: {e}"),
                        }
                    }
                    let mut ad = ad_ref.lock().unwrap();
                    ad.0 += ok;
                    ad.1 += gone;
                });
            }
            for (venue, ev) in &updates {
                let ScenarioEvent::Updates { updates, .. } = ev else {
                    unreachable!("filtered above");
                };
                if updates.iter().all(|u| u.labels.is_empty()) {
                    let deltas: Vec<ObjectDelta> = updates.iter().map(|u| u.delta).collect();
                    admin
                        .update_objects(*venue, &deltas)
                        .expect("valid plain batch over the wire");
                } else {
                    admin
                        .update_keywords(*venue, updates)
                        .expect("valid keyword batch over the wire");
                }
            }
        });
    }
    let wall = t0.elapsed();

    let stats = admin.stats().expect("final stats over the wire");
    drop(admin);
    drop(clients);
    drop(server);
    // Phase attribution reads the in-process handle the loopback server
    // shares — the same data `NetClient::metrics` would return as text.
    let phases = phase_attribution(&service.metrics_snapshot());
    let hit_rate = if stats.queries > 0 {
        stats.cache_hits as f64 / stats.queries as f64
    } else {
        0.0
    };
    let (answered, dropped) = *answered_dropped.lock().unwrap();
    finish(
        profile,
        "WIRE",
        lat.snapshot(),
        phases,
        wall,
        answered,
        dropped,
        stats.shed,
        stats.admission_timeouts,
        hit_rate,
        stats.deltas_absorbed,
    )
}

/// Replay the stream's slot-0 queries serially through one bare index.
pub fn run_index(
    profile: &WorkloadProfile,
    index: &AnyIndex,
    stream: &[TickEvents],
) -> CellMetrics {
    let lat = Histogram::new();
    let t0 = Instant::now();
    for te in stream {
        for ev in &te.events {
            if let ScenarioEvent::Query { slot: 0, req } = ev {
                let t = Instant::now();
                std::hint::black_box(index.answer(req));
                lat.record(t.elapsed().as_nanos() as u64);
            }
        }
    }
    let wall = t0.elapsed();
    let snap = lat.snapshot();
    let answered = snap.count();
    finish(
        profile,
        index.name(),
        snap,
        [0.0; 3],
        wall,
        answered,
        0,
        0,
        0,
        0.0,
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, validate_stream};
    use indoor_bench::{build_suite, SuiteOptions};
    use indoor_model::{AdmissionSpec, ArrivalCurve};
    use indoor_synth::random_venue;
    use std::sync::Arc;

    #[test]
    fn service_run_answers_everything_on_an_unbounded_shard() {
        let world = ScenarioWorld::new(vec![Arc::new(random_venue(70))]);
        let mut p = WorkloadProfile::base("smoke");
        p.ticks = 4;
        p.queries_per_tick = 8;
        let stream = compile(&p, &world, 3, 1);
        validate_stream(&p, &world, &stream).unwrap();
        let m = run_service(&p, &world, &stream, 3, &RunOptions::default());
        assert_eq!(m.index, "SVC");
        assert_eq!(m.requests, 32);
        assert_eq!(m.answered, 32);
        assert_eq!((m.dropped, m.shed, m.timeouts), (0, 0, 0));
        assert!(m.p50_us > 0.0 && m.p99_us >= m.p50_us);
        assert!(m.qps > 0.0);
    }

    #[test]
    fn overloaded_spike_sheds_but_retries_answer() {
        let world = ScenarioWorld::new(vec![Arc::new(random_venue(71))]);
        let mut p = WorkloadProfile::base("spiky");
        p.ticks = 6;
        p.queries_per_tick = 40;
        p.arrival = ArrivalCurve::Spike {
            start: 2,
            len: 2,
            magnify: 6,
        };
        p.hot_slot = Some(0);
        p.admission = vec![AdmissionSpec {
            slot: 0,
            max_in_flight: 1,
            policy: OverloadSpec::Shed,
        }];
        // Whether the gate actually bounces anyone is a thread-timing
        // race (workers can serialise perfectly on a fast machine), so
        // the shed > 0 assertion gets a few independently seeded runs —
        // the accounting invariants must hold on every one of them.
        let mut shed_seen = false;
        for seed in 9..14 {
            let stream = compile(&p, &world, seed, 1);
            let m = run_service(&p, &world, &stream, seed, &RunOptions::default());
            assert!(
                m.answered + m.dropped == m.requests,
                "request accounting: {m:?}"
            );
            assert!(m.answered > 0);
            if m.shed > 0 {
                shed_seen = true;
                break;
            }
        }
        assert!(
            shed_seen,
            "gate never pushed back across five seeded spike runs"
        );
    }

    #[test]
    fn open_loop_run_answers_everything_and_paces_arrivals() {
        let world = ScenarioWorld::new(vec![Arc::new(random_venue(73))]);
        let mut p = WorkloadProfile::base("paced");
        p.ticks = 2;
        p.queries_per_tick = 20;
        let stream = compile(&p, &world, 5, 1);
        let opts = RunOptions {
            arrival: Arrival::Open { qps: 20_000.0 },
            ..RunOptions::default()
        };
        let t0 = Instant::now();
        let m = run_service(&p, &world, &stream, 5, &opts);
        assert_eq!(m.answered, 40);
        assert_eq!((m.dropped, m.shed), (0, 0));
        // 20 arrivals per tick at 20k/s schedule the last one ~1ms in;
        // pacing must actually have stretched the run past that.
        assert!(
            t0.elapsed() >= Duration::from_micros(1900),
            "open-loop run finished before its schedule could have"
        );
    }

    #[test]
    fn wire_run_matches_in_process_accounting() {
        let world = ScenarioWorld::new(vec![Arc::new(random_venue(74))]);
        let mut p = WorkloadProfile::base("wired");
        p.ticks = 3;
        p.queries_per_tick = 10;
        let stream = compile(&p, &world, 6, 1);
        validate_stream(&p, &world, &stream).unwrap();
        let opts = RunOptions {
            workers: 2,
            ..RunOptions::default()
        };
        let direct = run_service(&p, &world, &stream, 6, &opts);
        let wired = run_service_wire(&p, &world, &stream, 6, &opts);
        assert_eq!(wired.index, "WIRE");
        assert_eq!(wired.requests, direct.requests);
        assert_eq!(wired.answered, direct.answered);
        assert_eq!(wired.dropped, 0);
        assert_eq!(wired.deltas, direct.deltas);
    }

    #[test]
    fn index_run_replays_slot_zero_queries() {
        let world = ScenarioWorld::new(vec![Arc::new(random_venue(72))]);
        let mut p = WorkloadProfile::base("bare");
        p.ticks = 3;
        p.queries_per_tick = 6;
        let stream = compile(&p, &world, 4, 1);
        let suite = build_suite(
            world.venue(0),
            &SuiteOptions {
                objects: Some(world.base_objects(0, p.objects_per_venue, 4)),
                ..SuiteOptions::default()
            },
        );
        for (index, _) in &suite {
            let m = run_index(&p, index, &stream);
            assert_eq!(m.requests, 18, "{}", index.name());
            assert_eq!(m.answered, 18);
            assert_eq!(m.deltas, 0);
        }
    }
}
