//! Zipf-skewed sampling with an integer exponent.
//!
//! Keyword popularity in search-style workloads is heavy-tailed: rank-1
//! terms dominate, the tail is long. The classic Zipf law draws rank `r`
//! (1-based) with weight `1/r^s`. This sampler restricts `s` to integers
//! so every weight is computed by repeated multiplication of exact IEEE
//! divisions — `powf` goes through libm and is **not** bit-identical
//! across platforms, which would break the cross-host stream-fingerprint
//! gate (`scenario_check`).

use indoor_model::KeywordSkew;
use rand::rngs::StdRng;
use rand::Rng;

/// Cumulative-weight sampler over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cum[r]` = total weight of ranks `0..=r`, un-normalised.
    cum: Vec<f64>,
}

impl Zipf {
    /// Weights `1/(r+1)^exponent` for ranks `0..n`. `n` must be > 0;
    /// `exponent` is clamped to ≥ 1.
    pub fn new(n: u32, exponent: u32) -> Zipf {
        assert!(n > 0, "empty Zipf vocabulary");
        let exponent = exponent.max(1);
        let mut cum = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for rank in 0..n {
            let base = 1.0 / f64::from(rank + 1);
            let mut w = 1.0f64;
            for _ in 0..exponent {
                w *= base;
            }
            total += w;
            cum.push(total);
        }
        Zipf { cum }
    }

    pub fn for_skew(skew: &KeywordSkew) -> Zipf {
        Zipf::new(skew.vocabulary, skew.exponent)
    }

    /// Draw a rank in `0..n`: one uniform `f64` against the cumulative
    /// weights, resolved by binary search (`partition_point` keeps the
    /// draw branch-free of float-comparison edge cases — a roll ≥ the
    /// final cumulative weight clamps to the last rank).
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let total = *self.cum.last().expect("non-empty");
        let roll = rng.gen_range(0.0..total);
        let idx = self.cum.partition_point(|&c| c <= roll);
        idx.min(self.cum.len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(16, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 16];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[1], "rank 0 beats rank 1: {counts:?}");
        assert!(counts[1] > counts[8], "rank 1 beats rank 8: {counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "long tail sampled");
        // Rank 0 carries ~1/H(16) ≈ 30% of the mass at s=1.
        assert!(counts[0] > 2_000);
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let z1 = Zipf::new(16, 1);
        let z3 = Zipf::new(16, 3);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let head1 = (0..5_000).filter(|_| z1.sample(&mut a) == 0).count();
        let head3 = (0..5_000).filter(|_| z3.sample(&mut b) == 0).count();
        assert!(head3 > head1, "s=3 head {head3} vs s=1 head {head1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipf::new(32, 2);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
