//! Airport navigation (§1.1: "a passenger may want to find the shortest
//! path to the boarding gate in an airport").
//!
//! Demonstrates travel-time edge weights (§2: distances "set to zero for a
//! lift/escalator if the distance corresponds to the walking distance or
//! to a non-zero value if the distance is the travel time"): the same
//! terminal is queried with walking-distance weights and with a moving
//! walkway modelled as a fast fixed-cost partition, changing the best
//! route to the gate.
//!
//! ```sh
//! cargo run --release --example airport_navigation
//! ```

use indoor_spatial::prelude::*;
use std::sync::Arc;

/// Build a two-concourse terminal. `walkway_cost`: traversal cost of the
/// moving walkway connecting the concourses (None = ordinary corridor).
fn terminal(walkway_cost: Option<f64>) -> (Venue, PartitionId, PartitionId, PartitionId) {
    let mut b = VenueBuilder::new();
    // Concourse A (x 0..40) and concourse B (x 60..100).
    let conc_a = b.add_partition(PartitionKind::Hallway, Rect::new(0.0, 0.0, 40.0, 8.0, 0));
    let conc_b = b.add_partition(PartitionKind::Hallway, Rect::new(60.0, 0.0, 100.0, 8.0, 0));
    // A long connector corridor and a parallel moving walkway.
    let connector = b.add_partition(PartitionKind::Hallway, Rect::new(40.0, 0.0, 60.0, 4.0, 0));
    let walkway = b.add_partition(PartitionKind::Escalator, Rect::new(40.0, 4.0, 60.0, 8.0, 0));
    if let Some(c) = walkway_cost {
        b.set_fixed_traversal_weight(walkway, c);
    }
    b.add_door(Point::new(40.0, 2.0, 0), conc_a, Some(connector));
    b.add_door(Point::new(60.0, 2.0, 0), connector, Some(conc_b));
    b.add_door(Point::new(40.0, 6.0, 0), conc_a, Some(walkway));
    b.add_door(Point::new(60.0, 6.0, 0), walkway, Some(conc_b));

    // Gates along concourse B, security at concourse A.
    let security = b.add_partition(PartitionKind::Room, Rect::new(0.0, 8.0, 10.0, 14.0, 0));
    b.add_door(Point::new(5.0, 8.0, 0), security, Some(conc_a));
    let mut gate42 = None;
    for g in 0..6 {
        let x = 62.0 + g as f64 * 6.0;
        let gate = b.add_partition(PartitionKind::Room, Rect::new(x, 8.0, x + 5.0, 14.0, 0));
        b.add_door(Point::new(x + 2.5, 8.0, 0), gate, Some(conc_b));
        if g == 4 {
            gate42 = Some(gate);
        }
    }
    b.add_exterior_door(Point::new(0.0, 4.0, 0), conc_a);
    (
        b.build().expect("valid terminal"),
        security,
        gate42.expect("gate added"),
        walkway,
    )
}

fn main() {
    for (label, cost) in [
        ("walking distance everywhere", None),
        ("moving walkway at 20% cost", Some(4.0)),
    ] {
        let (venue, security, gate, walkway) = terminal(cost);
        let venue = Arc::new(venue);
        let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).expect("build");

        let passenger = IndoorPoint::new(security, Point::new(5.0, 11.0, 0));
        let gate_desk = IndoorPoint::new(gate, Point::new(88.5, 11.0, 0));
        let route = tree.shortest_path(&passenger, &gate_desk).expect("route");
        let via_walkway = route
            .doors
            .iter()
            .any(|d| venue.door(*d).partition_ids().any(|p| p == walkway));
        println!(
            "{label}: cost {:.1}, {} doors, via moving walkway: {via_walkway}",
            route.length,
            route.num_doors()
        );
        assert!((route.validate(&venue).unwrap() - route.length).abs() < 1e-9);
    }
}
