//! Emergency evacuation (the paper's §1.1 motivating scenario): "in an
//! emergency, an indoor LBS can guide people to the nearby exit doors."
//!
//! Builds the 14-level Menzies preset, places occupants at random
//! positions, and routes each to its nearest building exit, printing the
//! evacuation distance distribution.
//!
//! ```sh
//! cargo run --release --example emergency_evacuation
//! ```

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, workload};
use std::sync::Arc;

fn main() {
    let venue = Arc::new(presets::menzies().build());
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).expect("build");

    // Exit points: one just inside each exterior door.
    let exits: Vec<IndoorPoint> = venue
        .doors()
        .iter()
        .filter(|d| d.is_exterior())
        .map(|d| {
            let p = d.partitions[0].expect("exterior door has an inside");
            IndoorPoint::new(p, d.position)
        })
        .collect();
    println!("{} exit doors found", exits.len());

    let occupants = workload::query_points(&venue, 500, 99);
    let mut distances: Vec<f64> = Vec::new();
    let mut longest: Option<(IndoorPoint, IndoorPath)> = None;
    for person in &occupants {
        // Nearest exit = min shortest distance over exit points.
        let (exit, d) = exits
            .iter()
            .filter_map(|e| tree.shortest_distance(person, e).map(|d| (e, d)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("every occupant can evacuate");
        distances.push(d);
        if longest.as_ref().is_none_or(|(_, p)| d > p.length) {
            longest = tree.shortest_path(person, exit).map(|p| (*person, p));
        }
    }

    distances.sort_by(f64::total_cmp);
    let pct = |q: f64| distances[((distances.len() - 1) as f64 * q) as usize];
    println!(
        "evacuation distance: median {:.0} m, p90 {:.0} m, max {:.0} m",
        pct(0.5),
        pct(0.9),
        pct(1.0)
    );

    let (who, route) = longest.expect("non-empty building");
    println!(
        "worst-placed occupant (partition {}, level {}) escapes in {:.0} m crossing {} doors",
        who.partition,
        who.position.level,
        route.length,
        route.num_doors()
    );
    // The route is walkable: validate() recomputes its exact length.
    let recomputed = route.validate(&venue).expect("valid route");
    assert!((recomputed - route.length).abs() < 1e-6 * recomputed);
}
