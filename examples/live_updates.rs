//! Live object churn on a serving venue — the workload the VIP-tree
//! paper targets: the *tree* is static (walls don't move) but the
//! *objects* (shops, tagged assets, people) churn constantly.
//!
//! A facilities team relocates kiosks and registers pop-up stalls while
//! the directory keeps serving: `update_objects` absorbs insert/remove/
//! move deltas under `&self` — touching only the leaves the deltas land
//! in — the version-stamped cache structurally invalidates object
//! answers (and *keeps* cached evacuation paths, which don't depend on
//! objects), and a second venue never notices.
//!
//! ```sh
//! cargo run --release --example live_updates
//! ```

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, workload};
use std::sync::Arc;

fn main() {
    let mall = Arc::new(presets::melbourne_central().build());
    let offices = Arc::new(presets::menzies().build());
    let kiosks = workload::place_objects(&mall, 24, 7);

    let service = IndoorService::new();
    let mall_id = service
        .add_venue(
            mall.clone(),
            ShardConfig {
                objects: kiosks.clone(),
                ..ShardConfig::default()
            },
        )
        .expect("mall shard");
    let office_id = service
        .add_venue(
            offices.clone(),
            ShardConfig {
                objects: workload::place_objects(&offices, 12, 8),
                ..ShardConfig::default()
            },
        )
        .expect("office shard");
    println!(
        "serving {} venues: mall={mall_id} ({} doors), offices={office_id} ({} doors)",
        service.venue_count(),
        mall.stats().doors,
        offices.stats().doors
    );

    // Warm both venues: a kNN lookup and an evacuation path per venue.
    let q = workload::query_points(&mall, 1, 21)[0];
    let (s, t) = workload::query_pairs(&mall, 1, 22)[0];
    let knn = QueryRequest::Knn { q, k: 3 };
    let path = QueryRequest::ShortestPath { s, t };
    let office_q = workload::query_points(&offices, 1, 23)[0];
    let office_knn = QueryRequest::Knn { q: office_q, k: 3 };
    let before = service.execute(mall_id, &knn).expect("mall knn");
    service.execute(mall_id, &path).expect("mall path");
    let office_before = service.execute(office_id, &office_knn).expect("office knn");
    println!(
        "\nmall k=3 before churn: {:?}",
        before
            .objects()
            .unwrap()
            .iter()
            .map(|(o, _)| o)
            .collect::<Vec<_>>()
    );

    // The afternoon's churn, one typed batch: a pop-up stall opens next
    // to the query point, kiosk o0 is carted to the far end, kiosk o1 is
    // decommissioned.
    let deltas = [
        ObjectDelta::Insert {
            id: ObjectId(100),
            at: q,
        },
        ObjectDelta::Move {
            id: ObjectId(0),
            to: kiosks[23],
        },
        ObjectDelta::Remove { id: ObjectId(1) },
    ];
    let report = service.update_objects(mall_id, &deltas).expect("churn");
    println!(
        "\napplied {} deltas: {} inserts / {} moves / {} removes, touched {} of the tree's leaves ({} compactions)",
        deltas.len(),
        report.inserts,
        report.moves,
        report.removes,
        report.touched_leaves,
        report.compactions
    );
    println!(
        "mall version {} (epoch {} — deltas are not rebuilds)",
        service.version(mall_id).unwrap(),
        service.epoch(mall_id).unwrap()
    );

    let after = service.execute(mall_id, &knn).expect("mall knn");
    println!(
        "mall k=3 after churn:  {:?}  (pop-up o100 surfaces instantly)",
        after
            .objects()
            .unwrap()
            .iter()
            .map(|(o, _)| o)
            .collect::<Vec<_>>()
    );
    assert_ne!(before, after);

    // Cached path answers survive object churn; the office venue's cache
    // was never touched at all.
    service.execute(mall_id, &path).expect("mall path again");
    service
        .execute(office_id, &office_knn)
        .expect("office again");
    let stats = service.stats();
    println!(
        "\npath cache hit after churn: {} (geometry is object-independent)",
        stats.kind(QueryKind::ShortestPath).cache_hits
    );
    println!(
        "office cache hit after mall churn: {} (venues are isolated)",
        stats.kind(QueryKind::Knn).cache_hits
    );
    assert_eq!(stats.kind(QueryKind::ShortestPath).cache_hits, 1);
    assert_eq!(
        service.execute(office_id, &office_knn).unwrap(),
        office_before
    );

    // Index-level proof of incrementality.
    let oi_stats = service
        .engine(mall_id)
        .unwrap()
        .tree()
        .ip()
        .object_index()
        .unwrap()
        .index_stats();
    println!(
        "\nobject index: {} live objects in {} slots; {} leaf builds (all at attach), {} incremental touches, {} compactions",
        oi_stats.live, oi_stats.slots, oi_stats.leaf_builds, oi_stats.leaf_touches, oi_stats.compactions
    );
    println!(
        "cache: {}/{} entries, {} evictions",
        stats.cached_entries, stats.cache_capacity, stats.evictions
    );
}
