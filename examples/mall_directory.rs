//! Shopping-centre directory (§1.1: "a disabled person may issue a query
//! to find accessible toilets within 100 metres in a shopping mall").
//!
//! Uses the Melbourne Central preset with a small amenity set (the paper's
//! default object workload: washrooms, |O| = 50 scaled down), answering
//! kNN and range queries from a shopper's position, and compares the
//! VIP-tree against the expansion-based DistAw baseline on the same
//! queries.
//!
//! ```sh
//! cargo run --release --example mall_directory
//! ```

use indoor_spatial::baselines::DistAw;
use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, workload};
use indoor_spatial::vip::KeywordObjects;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let venue = Arc::new(presets::melbourne_central().build());
    let amenities = workload::place_objects(&venue, 20, 4242);

    let vip = VipTree::build(venue.clone(), &VipTreeConfig::default()).expect("build");
    vip.attach_objects(&amenities);
    let mut distaw = DistAw::new(venue.clone());
    distaw.attach_objects(&amenities);

    let shopper = workload::query_points(&venue, 1, 7)[0];
    println!(
        "shopper at partition {} level {}",
        shopper.partition, shopper.position.level
    );

    // Nearest 3 amenities.
    for (oid, d) in vip.knn(&shopper, 3) {
        let o = &amenities[oid.index()];
        println!(
            "  amenity {oid}: {:.0} m away (partition {}, level {})",
            d, o.partition, o.position.level
        );
    }

    // Accessible amenities within 100 m (the paper's default range).
    let within = ObjectQueries::range(&vip, &shopper, 100.0);
    println!("  {} amenities within 100 m", within.len());

    // Spatial-keyword query (§1.3 adaptability): nearest *washroom* only.
    let labelled: Vec<(IndoorPoint, Vec<String>)> = amenities
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let label = if i % 2 == 0 { "washroom" } else { "atm" };
            (*p, vec![label.to_string()])
        })
        .collect();
    let kw = KeywordObjects::build(vip.ip_tree(), &labelled);
    if let Some((oid, d)) = kw
        .knn_keyword(vip.ip_tree(), &shopper, 1, "washroom")
        .first()
    {
        println!("  nearest washroom: {oid} at {d:.0} m");
    }

    // Both engines agree; VIP answers from the index, DistAw by expansion.
    let queries = workload::query_points(&venue, 400, 9);
    for q in &queries {
        let a = vip.knn(q, 5);
        let b = ObjectQueries::knn(&distaw, q, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x.1 - y.1).abs() < 1e-6 * x.1.max(1.0));
        }
    }
    let t0 = Instant::now();
    for q in &queries {
        std::hint::black_box(vip.knn(q, 5));
    }
    let vip_time = t0.elapsed();
    let t0 = Instant::now();
    for q in &queries {
        std::hint::black_box(ObjectQueries::knn(&distaw, q, 5));
    }
    let aw_time = t0.elapsed();
    println!(
        "kNN over {} queries: VIP-tree {:.1?}, DistAw {:.1?} (ratio {:.2})",
        queries.len(),
        vip_time,
        aw_time,
        aw_time.as_secs_f64() / vip_time.as_secs_f64()
    );
}
