//! Network serving and WAL-shipping replication, end to end on loopback:
//! a durable leader behind the TCP front-end (`crates/net`), a client
//! speaking the framed wire protocol — sequential, batched, and
//! pipelined — and a volatile follower that bootstraps from LSN 0,
//! tails the live WAL stream, and keeps answering after the leader is
//! stopped.
//!
//! ```sh
//! cargo run --release --example net_serving
//! ```

use indoor_net::{follower, NetClient, NetServer};
use indoor_spatial::prelude::*;
use indoor_spatial::synth::{random_venue, workload};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // A durable leader: the WAL it journals is what replication ships.
    let dir = std::env::temp_dir().join(format!("vip-net-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let leader = Arc::new(IndoorService::open(&dir).expect("open durable service"));

    let venue = Arc::new(random_venue(7));
    let objects = workload::place_objects(&venue, 32, 7);
    let keywords = workload::cycling_labels(&objects, "atm");
    let id = leader
        .add_venue(
            venue.clone(),
            ShardConfig {
                threads: 1,
                objects: objects.clone(),
                keywords,
                ..ShardConfig::default()
            },
        )
        .expect("venue builds");

    let mut server = NetServer::bind(leader.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    println!("leader serving on {addr}");

    // A wire client: one round trip, then the same requests pipelined.
    let mut client = NetClient::connect(addr).expect("connect");
    let reqs = workload::mixed_requests(&venue, 4, 4, 50.0, "atm", 7);
    let t0 = Instant::now();
    for req in &reqs {
        client.query(id.index() as u32, req).expect("wire answer");
    }
    println!(
        "sequential: {} queries in {:.1?} ({:.0} us each)",
        reqs.len(),
        t0.elapsed(),
        t0.elapsed().as_secs_f64() * 1e6 / reqs.len() as f64
    );
    let t0 = Instant::now();
    for req in &reqs {
        client
            .send_query(id.index() as u32, req.clone())
            .expect("send");
    }
    for _ in 0..reqs.len() {
        client.recv_answer().expect("recv").1.expect("answer");
    }
    println!(
        "pipelined:  {} queries in {:.1?} (batch-coalesced server-side)",
        reqs.len(),
        t0.elapsed()
    );

    // A volatile follower bootstraps the venue from the WAL suffix.
    let replica = IndoorService::new();
    let mut stream = follower::subscribe(addr, id, 0).expect("subscribe from LSN 0");
    let report = stream.catch_up(&replica).expect("catch up");
    println!(
        "follower caught up: applied {} records, version {} (lag {})",
        report.applied,
        report.version,
        replica
            .venue_stats(id)
            .expect("replica stats")
            .replication_lag
    );

    // Tail live while the leader absorbs churn through the wire.
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let replica_ref = &replica;
        let stop_tail = stop.clone();
        let tail = scope.spawn(move || stream.tail(replica_ref, &stop_tail));

        for (i, at) in objects.iter().take(8).enumerate() {
            client
                .update_objects(
                    id.index() as u32,
                    &[ObjectDelta::Insert {
                        id: ObjectId(500 + i as u32),
                        at: *at,
                    }],
                )
                .expect("wire mutation");
        }
        let target = leader.version(id).expect("leader version");
        while replica.version(id).expect("replica version") < target {
            std::thread::sleep(Duration::from_millis(2));
        }
        println!("follower tailed live churn to version {target}");

        // Stop the leader; the tail returns cleanly and the replica
        // keeps serving its last-synced state.
        server.stop();
        tail.join().expect("tail thread").expect("clean tail end");
    });

    let probe = &reqs[0];
    assert_eq!(
        replica.execute(id, probe).expect("replica answers"),
        leader.execute(id, probe).expect("leader answers"),
        "replica must match the leader's final state"
    );
    println!("leader stopped; replica still answering, byte-identical");

    let _ = std::fs::remove_dir_all(&dir);
}
