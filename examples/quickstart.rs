//! Quickstart: model a small office floor by hand, index it with a
//! VIP-tree, and run all four query types.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use indoor_spatial::prelude::*;
use std::sync::Arc;

fn main() {
    // --- 1. Model the venue: one corridor, five offices, a copy room. ---
    let mut b = VenueBuilder::new();
    let corridor = b.add_partition(PartitionKind::Hallway, Rect::new(0.0, 5.0, 30.0, 8.0, 0));
    let mut offices = Vec::new();
    for i in 0..5 {
        let x = i as f64 * 6.0;
        let office = b.add_partition(PartitionKind::Room, Rect::new(x, 0.0, x + 5.0, 5.0, 0));
        b.add_door(Point::new(x + 2.5, 5.0, 0), office, Some(corridor));
        offices.push(office);
    }
    let copy_room = b.add_partition(PartitionKind::Room, Rect::new(0.0, 8.0, 5.0, 12.0, 0));
    b.add_door(Point::new(2.5, 8.0, 0), copy_room, Some(corridor));
    b.add_exterior_door(Point::new(30.0, 6.5, 0), corridor);
    let venue = Arc::new(b.build().expect("valid venue"));
    println!(
        "venue: {} partitions, {} doors, {} D2D arcs",
        venue.num_partitions(),
        venue.num_doors(),
        venue.d2d().num_arcs()
    );

    // --- 2. Build the index. ---
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).expect("build");

    // --- 3. Shortest distance and path between two offices. ---
    let alice = IndoorPoint::new(offices[0], Point::new(1.0, 1.0, 0));
    let bob = IndoorPoint::new(offices[4], Point::new(27.0, 1.0, 0));
    let d = tree.shortest_distance(&alice, &bob).expect("reachable");
    let path = tree.shortest_path(&alice, &bob).expect("reachable");
    println!("alice -> bob: {:.1} m through doors {:?}", d, path.doors);
    assert!((path.length - d).abs() < 1e-9);

    // --- 4. kNN and range: nearest copy room / printers. ---
    let printers = vec![
        IndoorPoint::new(copy_room, Point::new(1.0, 10.0, 0)),
        IndoorPoint::new(offices[3], Point::new(20.0, 1.0, 0)),
    ];
    tree.attach_objects(&printers);
    let nearest = tree.knn(&alice, 1);
    println!(
        "nearest printer to alice: {} at {:.1} m",
        nearest[0].0, nearest[0].1
    );
    let within = tree.range(&alice, 15.0);
    println!("printers within 15 m of alice: {}", within.len());
}
