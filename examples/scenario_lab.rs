//! Scenario lab: compile a small flash-crowd workload, replay it through
//! the full `IndoorService` stack and two bare indexes, and print a
//! mini crossover matrix — the single-profile version of what
//! `scenario_bench` does for the whole committed suite.
//!
//! The profile: two venues at steady load until an 8x spike piles onto
//! venue 0 (the "victim") for six ticks while venue 1 (the "bystander")
//! carries on. The victim's admission gate sheds beyond one in-flight
//! request; [`ShardStats`] shows the overload stayed contained — the
//! bystander's counters are untouched.
//!
//! ```sh
//! cargo run --release --example scenario_lab
//! ```

use indoor_bench::AnyIndex;
use indoor_scenarios::{
    compile, crossover_matrix, run_index, run_service, validate_stream, RunOptions, ScenarioWorld,
};
use indoor_spatial::model::{AdmissionSpec, OverloadSpec};
use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, random_venue};
use indoor_spatial::vip::IpTree;
use std::sync::Arc;

fn main() {
    let seed = 7u64;
    let world = ScenarioWorld::new(vec![
        Arc::new(presets::melbourne_central().build()),
        Arc::new(random_venue(11)),
    ]);

    // A compact flash crowd: 16 ticks, spike of 8x on venue 0 mid-run,
    // kiosk-grade admission (one request at a time) at the victim.
    let mut p = WorkloadProfile::base("flash_crowd");
    p.ticks = 16;
    p.queries_per_tick = 64;
    p.initial_slots = 2;
    p.arrival = ArrivalCurve::Spike {
        start: 6,
        len: 6,
        magnify: 8,
    };
    p.hot_slot = Some(0);
    p.admission = vec![AdmissionSpec {
        slot: 0,
        max_in_flight: 1,
        policy: OverloadSpec::Shed,
    }];

    let stream = compile(&p, &world, seed, 2);
    validate_stream(&p, &world, &stream).expect("generated stream is valid");
    let queries: usize = stream.iter().map(TickEvents::queries).sum();
    println!(
        "compiled {} ticks / {queries} queries (seed {seed}, fingerprint 0x{:016x})\n",
        stream.len(),
        fingerprint_stream(&stream)
    );

    // End-to-end service cell plus two bare-index comparison cells over
    // the same slot-0 query stream.
    let mut cells = vec![run_service(
        &p,
        &world,
        &stream,
        seed,
        &RunOptions::default(),
    )];
    let objects = world.base_objects(0, p.objects_per_venue, seed);
    let venue = world.venue(0).clone();
    let vip = VipTree::build(venue.clone(), &VipTreeConfig::default()).expect("vip build");
    vip.attach_objects(&objects);
    cells.push(run_index(&p, &AnyIndex::Vip(vip), &stream));
    let ip = IpTree::build(venue, &VipTreeConfig::default()).expect("ip build");
    ip.attach_objects(&objects);
    cells.push(run_index(&p, &AnyIndex::Ip(ip), &stream));

    println!("{}", crossover_matrix(&cells));

    // Per-venue attribution: rebuild the service state and show that the
    // spike's shedding landed on the victim shard only.
    let service = IndoorService::new();
    let victim = service
        .add_venue(
            world.venue(0).clone(),
            ShardConfig {
                objects: world.base_objects(0, p.objects_per_venue, seed),
                admission: AdmissionConfig {
                    max_in_flight: 1,
                    policy: OverloadPolicy::Shed,
                },
                ..ShardConfig::default()
            },
        )
        .expect("victim venue");
    let bystander = service
        .add_venue(
            world.venue(1).clone(),
            ShardConfig {
                objects: world.base_objects(1, p.objects_per_venue, seed),
                ..ShardConfig::default()
            },
        )
        .expect("bystander venue");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for ev in stream.iter().flat_map(|te| te.events.iter()) {
                    if let ScenarioEvent::Query { slot, req } = ev {
                        let id = if *slot == 0 { victim } else { bystander };
                        let _ = service.execute(id, req);
                    }
                }
            });
        }
    });
    println!("Per-venue attribution (ShardStats):");
    for (label, id) in [("victim", victim), ("bystander", bystander)] {
        let s = service.venue_stats(id).expect("registered venue");
        println!(
            "  {label:<10} shed {:>5}  timeouts {:>3}  cached {:>4}/{:<5} gate {}",
            s.shed,
            s.admission_timeouts,
            s.cached_entries,
            s.cache_capacity,
            if s.admission_capacity == 0 {
                "unbounded".to_string()
            } else {
                format!("depth {}", s.admission_capacity)
            }
        );
    }
}
