//! Multi-venue serving: two buildings behind one `IndoorService`.
//!
//! A city-campus operator runs a directory service for Melbourne Central
//! (shopping centre) and the Menzies building (offices) at once. Typed
//! `QueryRequest`s route by `VenueId` to per-venue VIP-tree shards; the
//! version-stamped result cache absorbs the repeats of a hot-spot workload,
//! and `attach_objects` (overnight object churn) invalidates exactly the
//! venue it touches.
//!
//! ```sh
//! cargo run --release --example venue_router
//! ```

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, workload};
use std::sync::Arc;

const KEYWORD: &str = "cafe";

fn main() {
    let mall = Arc::new(presets::melbourne_central().build());
    let offices = Arc::new(presets::menzies().build());

    let service = IndoorService::new();
    let add = |venue: &Arc<Venue>, name: &str| {
        let objects = workload::place_objects(venue, 30, 7);
        let keywords = workload::cycling_labels(&objects, KEYWORD);
        let id = service
            .add_venue(
                venue.clone(),
                ShardConfig {
                    objects,
                    keywords,
                    ..ShardConfig::default()
                },
            )
            .expect("build shard");
        println!(
            "registered {name} as {id}: {} partitions, {} doors",
            venue.num_partitions(),
            venue.stats().doors
        );
        id
    };
    let mall_id = add(&mall, "Melbourne Central");
    let office_id = add(&offices, "Menzies");

    // A hot-spot workload: a mixed request stream per venue, replayed 4x
    // (directory kiosks repeat the same lookups all day).
    let mut reqs: Vec<(VenueId, QueryRequest)> = Vec::new();
    for req in workload::mixed_requests(&mall, 12, 3, 100.0, KEYWORD, 21) {
        reqs.push((mall_id, req));
    }
    for req in workload::mixed_requests(&offices, 12, 3, 100.0, KEYWORD, 22) {
        reqs.push((office_id, req));
    }
    workload::shuffle(&mut reqs, 23);

    for round in 0..4 {
        let answers = service.execute_batch(&reqs);
        let ok = answers.iter().filter(|a| a.is_ok()).count();
        println!("round {round}: {ok}/{} answered", answers.len());
    }

    // Overnight churn in the mall only: its cache resets, the offices'
    // stays warm.
    service
        .attach_objects(mall_id, &workload::place_objects(&mall, 30, 8))
        .expect("re-attach");
    println!(
        "mall objects replaced (epoch {} -> cache invalidated)",
        service.epoch(mall_id).unwrap()
    );
    let answers = service.execute_batch(&reqs);
    println!(
        "post-churn round: {}/{} answered",
        answers.iter().filter(|a| a.is_ok()).count(),
        answers.len()
    );

    let stats = service.stats();
    println!(
        "\nserved {} requests over {} venues ({} distinct answers cached)",
        stats.total_queries(),
        stats.venues,
        stats.cached_entries
    );
    println!(
        "{:<18} {:>8} {:>6} {:>9} {:>12}",
        "kind", "queries", "hits", "hit-rate", "mean-us"
    );
    for k in &stats.kinds {
        println!(
            "{:<18} {:>8} {:>6} {:>8.0}% {:>12.1}",
            k.kind.label(),
            k.queries,
            k.cache_hits,
            k.hit_rate() * 100.0,
            k.mean_latency_ns() / 1e3
        );
    }
    println!("overall cache hit-rate: {:.0}%", stats.hit_rate() * 100.0);
}
