//! Warm restart: snapshot a serving multi-venue directory, kill it,
//! reopen it, and keep answering byte-identically.
//!
//! Index construction dominates cost at venue scale, so a production
//! service restarts from a **snapshot** (every venue's live object set,
//! keyword lists and counters) plus each venue's **write-ahead log** (the
//! churn acknowledged after the snapshot) instead of replaying the
//! world. This example walks the whole durability lifecycle:
//!
//! 1. open a durable service, register a venue, serve and churn it;
//! 2. snapshot mid-flight (rotating the WAL), churn some more (the WAL
//!    suffix);
//! 3. drop the service — the "crash" — and `IndoorService::open` again;
//! 4. assert every query kind answers byte-identically to the answers
//!    recorded before the crash, and that the version counters (the WAL
//!    LSNs and cache-stamp anchors) survived monotonically.
//!
//! ```sh
//! cargo run --release --example warm_restart
//! ```

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, workload};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join(format!("vip-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. A durable service: everything acknowledged from here on is
    // journalled under `dir`.
    let mall = Arc::new(presets::melbourne_central().build());
    let kiosks = workload::place_objects(&mall, 32, 7);
    let labelled = workload::cycling_labels(&kiosks, "cafe");
    let service = IndoorService::open(&dir).expect("open durability dir");
    let id = service
        .add_venue(
            mall.clone(),
            ShardConfig {
                objects: kiosks.clone(),
                keywords: labelled,
                ..ShardConfig::default()
            },
        )
        .expect("mall shard");
    println!(
        "serving {} doors from Melbourne Central (journalling into {})",
        mall.stats().doors,
        dir.display()
    );

    // Churn before the snapshot: relocate two kiosks, register a pop-up.
    service
        .update_objects(
            id,
            &[
                ObjectDelta::Move {
                    id: ObjectId(0),
                    to: kiosks[5],
                },
                ObjectDelta::Move {
                    id: ObjectId(1),
                    to: kiosks[9],
                },
            ],
        )
        .expect("pre-snapshot churn");
    service
        .update_keyword_objects(
            id,
            &[ObjectUpdate {
                delta: ObjectDelta::Insert {
                    id: ObjectId(40),
                    at: kiosks[11],
                },
                labels: vec!["espresso".into(), "cafe".into()],
            }],
        )
        .expect("keyword churn");

    // 2. Snapshot mid-flight (concurrent with serving), then keep
    // churning: the two moves below live only in the WAL suffix.
    let t0 = Instant::now();
    let snap = service.save_snapshot(&dir).expect("snapshot");
    println!(
        "snapshot: {} venue(s), {} bytes, {} WAL records rotated away, {:.1} ms",
        snap.venues,
        snap.bytes,
        snap.wal_records_dropped,
        t0.elapsed().as_secs_f64() * 1e3
    );
    service
        .update_objects(
            id,
            &[
                ObjectDelta::Remove { id: ObjectId(2) },
                ObjectDelta::Insert {
                    id: ObjectId(50),
                    at: kiosks[13],
                },
            ],
        )
        .expect("post-snapshot churn");

    // Record the pre-crash truth: one request per query kind.
    let q = workload::query_points(&mall, 1, 21)[0];
    let (s, t) = workload::query_pairs(&mall, 1, 22)[0];
    let menu: Vec<QueryRequest> = vec![
        QueryRequest::Knn { q, k: 3 },
        QueryRequest::Range { q, radius: 120.0 },
        QueryRequest::KnnKeyword {
            q,
            k: 2,
            keyword: "espresso".into(),
        },
        QueryRequest::ShortestDistance { s, t },
        QueryRequest::ShortestPath { s, t },
    ];
    let before: Vec<QueryResponse> = menu
        .iter()
        .map(|req| service.execute(id, req).expect("pre-crash answer"))
        .collect();
    let version_before = service.version(id).expect("version");
    let epoch_before = service.epoch(id).expect("epoch");

    // 3. Crash: drop the whole service. Nothing survives but the files.
    drop(service);

    let t0 = Instant::now();
    let (revived, report) = IndoorService::open_with_report(&dir).expect("warm restart");
    println!(
        "warm restart in {:.1} ms: snapshot loaded: {}, {} WAL record(s) replayed, {} venue(s) serving",
        t0.elapsed().as_secs_f64() * 1e3,
        report.snapshot_loaded,
        report.replayed_records,
        report.venues
    );

    // 4. Byte-identical answers, surviving counters.
    for (req, want) in menu.iter().zip(&before) {
        let got = revived.execute(id, req).expect("post-restart answer");
        assert_eq!(&got, want, "answer diverged across restart: {req:?}");
    }
    assert_eq!(
        revived.version(id).expect("version"),
        version_before,
        "version counter (WAL LSN / cache-stamp anchor) must survive"
    );
    assert_eq!(revived.epoch(id).expect("epoch"), epoch_before);
    println!(
        "all {} query kinds byte-identical; version={} epoch={} survived the restart",
        menu.len(),
        version_before,
        epoch_before
    );

    // The revived service is immediately durable again: the next churn
    // batch journals at the next LSN.
    revived
        .update_objects(
            id,
            &[ObjectDelta::Move {
                id: ObjectId(3),
                to: kiosks[7],
            }],
        )
        .expect("post-restart churn");
    assert_eq!(revived.version(id).expect("version"), version_before + 1);
    println!(
        "post-restart churn journalled at LSN {}",
        version_before + 1
    );

    let _ = std::fs::remove_dir_all(&dir);
}
