//! # indoor-spatial
//!
//! Facade crate for the VIP-Tree indoor spatial query suite (a from-scratch
//! reproduction of *"VIP-Tree: An Effective Index for Indoor Spatial
//! Queries"*, PVLDB 10(4), 2016).
//!
//! The workspace is organised as one crate per subsystem; this crate
//! re-exports the public API so downstream users can depend on a single
//! package:
//!
//! * [`model`] — indoor data model: doors, partitions, venues, D2D/AB graphs.
//! * [`synth`] — synthetic venue generator, dataset presets, workloads.
//! * [`vip`] — the paper's contribution: IP-Tree and VIP-Tree, plus the
//!   serving layer (`QueryEngine` typed batches, multi-venue
//!   `IndoorService` with a bounded version-stamped result cache and
//!   `&self` live object churn via `ObjectDelta` batches).
//! * [`baselines`] — DistMx / DistAw competitors.
//! * [`gtree`] / [`road`] — road-network competitors adapted to indoor graphs.
//!
//! ```
//! use indoor_spatial::prelude::*;
//! use std::sync::Arc;
//!
//! let venue = Arc::new(indoor_spatial::synth::presets::melbourne_central().build());
//! let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
//! let pairs = indoor_spatial::synth::workload::query_pairs(&venue, 1, 7);
//! let (s, t) = pairs[0];
//! let d = tree.shortest_distance(&s, &t);
//! assert!(d.is_some());
//! ```

pub use geometry;
pub use graph_partition;
pub use indoor_graph as graph;
pub use indoor_model as model;
pub use indoor_synth as synth;

pub use gtree;
pub use indoor_baselines as baselines;
pub use road;
pub use vip_tree as vip;

/// Commonly used items for quick-start programs.
pub mod prelude {
    pub use geometry::{Point, Rect};
    pub use indoor_model::{
        fingerprint_stream, AnswerRequest, ArrivalCurve, ChurnSpec, DeltaError, Door, DoorId,
        IndoorIndex, IndoorPath, IndoorPoint, KeywordSkew, ObjectDelta, ObjectId, ObjectQueries,
        ObjectUpdate, Partition, PartitionClass, PartitionId, PartitionKind, QueryKind, QueryMix,
        QueryRequest, QueryResponse, ScenarioEvent, TickEvents, Venue, VenueBuilder, VenueId,
        WorkloadProfile,
    };
    pub use vip_tree::{
        AdmissionConfig, DeltaReport, IndoorService, IpTree, KindStats, ObjectIndexStats,
        OverloadPolicy, PersistError, QueryEngine, QueryScratch, RecoveryReport, ServiceError,
        ServiceStats, ShardConfig, ShardStats, SnapshotReport, SyncPolicy, VipTree, VipTreeConfig,
    };
}
