//! Ablations for the design choices DESIGN.md calls out: each optimisation
//! must change cost metrics, never answers.

use indoor_spatial::baselines::DistMx;
use indoor_spatial::model::QueryStats;
use indoor_spatial::prelude::*;
use indoor_spatial::synth::{random_venue, workload};
use std::sync::Arc;

/// Superior-door optimisation (§3.1.1 Definition 2): disabling it falls
/// back to scanning all doors of the source partition — same results.
#[test]
fn superior_doors_do_not_change_answers() {
    for seed in [1u64, 77, 4096] {
        let venue = Arc::new(random_venue(seed));
        let with = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        let without = VipTree::build(
            venue.clone(),
            &VipTreeConfig {
                use_superior_doors: false,
                ..Default::default()
            },
        )
        .unwrap();
        let mut st_with = QueryStats::default();
        let mut st_without = QueryStats::default();
        for (s, t) in workload::query_pairs(&venue, 30, seed ^ 0x5) {
            let a = with.shortest_distance_with_stats(&s, &t, &mut st_with);
            let b = without.shortest_distance_with_stats(&s, &t, &mut st_without);
            match (a, b) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9 * x.max(1.0)),
                (None, None) => {}
                _ => panic!("superior-door optimisation changed reachability"),
            }
        }
        // The optimisation can only shrink the candidate door set.
        assert!(st_with.door_pairs <= st_without.door_pairs);
    }
}

/// Minimum degree t trades index size for kNN pruning (Fig. 7) — never
/// correctness.
#[test]
fn min_degree_does_not_change_answers() {
    let venue = Arc::new(random_venue(31337));
    let objects = workload::place_objects(&venue, 12, 9);
    let trees: Vec<VipTree> = [2usize, 4, 8]
        .iter()
        .map(|&t| {
            let tree = VipTree::build(
                venue.clone(),
                &VipTreeConfig {
                    min_degree: t,
                    ..Default::default()
                },
            )
            .unwrap();
            tree.attach_objects(&objects);
            tree
        })
        .collect();

    for (s, t) in workload::query_pairs(&venue, 25, 3) {
        let ds: Vec<Option<f64>> = trees
            .iter()
            .map(|tr| tr.shortest_distance_points(&s, &t))
            .collect();
        for w in ds.windows(2) {
            match (w[0], w[1]) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9 * a.max(1.0)),
                (None, None) => {}
                _ => panic!("t changed reachability"),
            }
        }
    }
    for q in workload::query_points(&venue, 10, 4) {
        let rs: Vec<_> = trees.iter().map(|tr| tr.knn(&q, 3)).collect();
        for w in rs.windows(2) {
            assert_eq!(w[0].len(), w[1].len());
            for (a, b) in w[0].iter().zip(&w[1]) {
                assert!((a.1 - b.1).abs() < 1e-9 * a.1.max(1.0));
            }
        }
    }
}

/// The DistMx no-through-door optimisation (§4.3.1) only reduces the pairs
/// considered (Fig. 9(a)).
#[test]
fn distmx_optimisation_reduces_pairs_only() {
    let venue = Arc::new(random_venue(5150));
    let opt = DistMx::build(venue.clone());
    let unopt = DistMx::build(venue.clone()).without_optimisation();
    let mut st_o = QueryStats::default();
    let mut st_u = QueryStats::default();
    for (s, t) in workload::query_pairs(&venue, 50, 6) {
        let a = opt.shortest_distance_with_stats(&s, &t, &mut st_o);
        let b = unopt.shortest_distance_with_stats(&s, &t, &mut st_u);
        assert_eq!(a.is_some(), b.is_some());
        if let (Some(x), Some(y)) = (a, b) {
            assert!((x - y).abs() < 1e-9 * x.max(1.0));
        }
    }
    assert!(st_o.door_pairs <= st_u.door_pairs);
    assert!(st_o.door_pairs > 0);
}

/// VIP-tree's materialised tables are a pure accelerator over the IP-tree
/// ascent: identical answers, identical paths lengths.
#[test]
fn vip_is_pure_acceleration_of_ip() {
    for seed in [8u64, 800, 80000] {
        let venue = Arc::new(random_venue(seed));
        let cfg = VipTreeConfig::default();
        let ip = IpTree::build(venue.clone(), &cfg).unwrap();
        let vip = VipTree::build(venue.clone(), &cfg).unwrap();
        for (s, t) in workload::query_pairs(&venue, 25, seed) {
            let a = ip.shortest_distance_points(&s, &t);
            let b = vip.shortest_distance_points(&s, &t);
            match (a, b) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9 * x.max(1.0)),
                (None, None) => {}
                _ => panic!("materialisation changed reachability"),
            }
            let pa = ip.shortest_path_points(&s, &t);
            let pb = vip.shortest_path_points(&s, &t);
            match (pa, pb) {
                (Some(x), Some(y)) => {
                    assert!((x.length - y.length).abs() < 1e-9 * x.length.max(1.0))
                }
                (None, None) => {}
                _ => panic!("materialisation changed path reachability"),
            }
        }
        // Materialisation costs memory.
        assert!(vip.size_bytes() > ip.size_bytes());
    }
}
