//! Concurrent query correctness: many threads hammering one shared
//! `Arc<VipTree>` through the pooled single-query APIs, and the
//! `QueryEngine` batch APIs, must produce **byte-identical** answers to a
//! serial loop in input order (same contract style as
//! `parallel_equivalence.rs`, but for the query path instead of the
//! build).

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, random_venue, workload};
use indoor_spatial::vip::{KeywordObjects, QueryEngine};
use proptest::prelude::*;
use std::sync::Arc;

fn bits(r: &[(indoor_spatial::model::ObjectId, f64)]) -> Vec<(u32, u64)> {
    r.iter().map(|(o, d)| (o.0, d.to_bits())).collect()
}

/// One shared tree, 8 threads, each replaying the full workload through
/// the pooled single-query APIs; every answer must equal the serial one
/// bit for bit.
#[test]
fn threads_hammering_shared_tree_match_serial() {
    let venue = Arc::new(random_venue(404));
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    tree.attach_objects(&workload::place_objects(&venue, 30, 9));
    let tree = Arc::new(tree);

    let points = workload::query_points(&venue, 25, 0xC0);
    let pairs = workload::query_pairs(&venue, 25, 0xC1);

    let serial_knn: Vec<_> = points.iter().map(|q| tree.knn(q, 5)).collect();
    let serial_range: Vec<_> = points.iter().map(|q| tree.range(q, 120.0)).collect();
    let serial_dist: Vec<_> = pairs
        .iter()
        .map(|(s, t)| tree.shortest_distance_points(s, t))
        .collect();
    let serial_path: Vec<_> = pairs
        .iter()
        .map(|(s, t)| tree.shortest_path_points(s, t))
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..8 {
            let tree = &tree;
            let points = &points;
            let pairs = &pairs;
            let serial_knn = &serial_knn;
            let serial_range = &serial_range;
            let serial_dist = &serial_dist;
            let serial_path = &serial_path;
            scope.spawn(move || {
                // Stagger the starting offset so the pool interleaves
                // scratches between different query kinds across threads.
                for i in 0..points.len() {
                    let i = (i + worker * 3) % points.len();
                    assert_eq!(
                        bits(&tree.knn(&points[i], 5)),
                        bits(&serial_knn[i]),
                        "worker {worker}: kNN {i}"
                    );
                    assert_eq!(
                        bits(&tree.range(&points[i], 120.0)),
                        bits(&serial_range[i]),
                        "worker {worker}: range {i}"
                    );
                    let (s, t) = &pairs[i];
                    assert_eq!(
                        tree.shortest_distance_points(s, t).map(f64::to_bits),
                        serial_dist[i].map(f64::to_bits),
                        "worker {worker}: distance {i}"
                    );
                    let p = tree.shortest_path_points(s, t);
                    assert_eq!(
                        p.as_ref().map(|p| &p.doors),
                        serial_path[i].as_ref().map(|p| &p.doors),
                        "worker {worker}: path doors {i}"
                    );
                    assert_eq!(
                        p.map(|p| p.length.to_bits()),
                        serial_path[i].as_ref().map(|p| p.length.to_bits()),
                        "worker {worker}: path length {i}"
                    );
                }
            });
        }
    });
}

/// The batch APIs return slot `i` == serial answer `i`, for every thread
/// count, on a calibrated preset.
#[test]
fn batch_apis_match_serial_on_preset() {
    let venue = Arc::new(presets::melbourne_central().build());
    let objects = workload::place_objects(&venue, 60, 0xA1);
    let labelled = workload::cycling_labels(&objects, "cafe");
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    tree.attach_objects(&objects);
    let kw = Arc::new(KeywordObjects::build(tree.ip_tree(), &labelled));
    let tree = Arc::new(tree);

    let points = workload::query_points(&venue, 40, 0xB2);
    let pairs = workload::query_pairs(&venue, 40, 0xB3);

    let serial_knn: Vec<_> = points.iter().map(|q| tree.knn(q, 4)).collect();
    let serial_kw: Vec<_> = points
        .iter()
        .map(|q| kw.knn_keyword(tree.ip_tree(), q, 4, "cafe"))
        .collect();
    let serial_path: Vec<_> = pairs
        .iter()
        .map(|(s, t)| tree.shortest_path_points(s, t))
        .collect();

    for threads in [1usize, 2, 4] {
        let engine = QueryEngine::for_vip(tree.clone())
            .with_threads(threads)
            .with_keywords(kw.clone());
        let got_knn = engine.batch_knn(&points, 4);
        let got_kw = engine.batch_knn_keyword(&points, 4, "cafe");
        let got_path = engine.batch_shortest_path(&pairs);
        assert_eq!(got_knn.len(), points.len());
        for i in 0..points.len() {
            assert_eq!(
                bits(&got_knn[i]),
                bits(&serial_knn[i]),
                "threads {threads}: kNN slot {i}"
            );
            assert_eq!(
                bits(&got_kw[i]),
                bits(&serial_kw[i]),
                "threads {threads}: keyword slot {i}"
            );
        }
        for i in 0..pairs.len() {
            assert_eq!(
                got_path[i].as_ref().map(|p| &p.doors),
                serial_path[i].as_ref().map(|p| &p.doors),
                "threads {threads}: path slot {i}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batch results preserve input order: each output slot is exactly
    /// the single-query answer for the same slot's input, even with
    /// duplicated queries and multiple worker threads racing.
    #[test]
    fn batch_preserves_input_order(seed in 0u64..800, n_q in 1usize..30) {
        let venue = Arc::new(random_venue(seed));
        let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        tree.attach_objects(&workload::place_objects(&venue, 20, seed ^ 0x51));
        let tree = Arc::new(tree);
        let engine = QueryEngine::for_vip(tree.clone()).with_threads(4);

        let mut points = workload::query_points(&venue, n_q, seed ^ 0x52);
        // Duplicate a prefix so identical queries occupy distinct slots.
        let dup: Vec<_> = points.iter().take(3).copied().collect();
        points.extend(dup);
        let pairs = workload::query_pairs(&venue, n_q, seed ^ 0x53);

        let got = engine.batch_knn(&points, 3);
        prop_assert_eq!(got.len(), points.len());
        for (i, q) in points.iter().enumerate() {
            prop_assert_eq!(bits(&got[i]), bits(&tree.knn(q, 3)), "kNN slot {}", i);
        }
        let got = engine.batch_range(&points, 90.0);
        for (i, q) in points.iter().enumerate() {
            prop_assert_eq!(bits(&got[i]), bits(&tree.range(q, 90.0)), "range slot {}", i);
        }
        let got = engine.batch_shortest_distance(&pairs);
        prop_assert_eq!(got.len(), pairs.len());
        for (i, (s, t)) in pairs.iter().enumerate() {
            prop_assert_eq!(
                got[i].map(f64::to_bits),
                tree.shortest_distance_points(s, t).map(f64::to_bits),
                "distance slot {}", i
            );
        }
    }
}
