//! Cross-crate integration: every index answers the **same typed request
//! stream** (`QueryRequest` batches via the blanket `AnswerRequest` impl)
//! and must agree — identical shortest distances, shortest-path lengths,
//! kNN results and range results — on random venues and on the calibrated
//! MC preset. The VIP-tree additionally answers the stream through
//! `QueryEngine::execute_batch`, which must match its trait-surface
//! answers bit for bit (catching per-kind wrapper drift for free).

use indoor_spatial::baselines::{DistAw, DistAwPlus, DistMx};
use indoor_spatial::gtree::{GTree, GTreeConfig};
use indoor_spatial::prelude::*;
use indoor_spatial::road::{Road, RoadConfig};
use indoor_spatial::synth::{presets, random_venue, workload};
use std::sync::Arc;

/// Object-safe answering surface: a name plus the typed request API.
trait NamedAnswerer {
    fn name2(&self) -> &'static str;
    fn answer_all(&self, reqs: &[QueryRequest]) -> Vec<QueryResponse>;
}

impl<T: IndoorIndex + ObjectQueries> NamedAnswerer for T {
    fn name2(&self) -> &'static str {
        self.name()
    }
    fn answer_all(&self, reqs: &[QueryRequest]) -> Vec<QueryResponse> {
        self.answer_batch(reqs)
    }
}

/// `Arc<DistMx>` wrapper so the matrix can be shared with DistAw++.
struct ArcMx(Arc<DistMx>);
impl NamedAnswerer for ArcMx {
    fn name2(&self) -> &'static str {
        self.0.name()
    }
    fn answer_all(&self, reqs: &[QueryRequest]) -> Vec<QueryResponse> {
        self.0.answer_batch(reqs)
    }
}

fn all_indexes(venue: &Arc<Venue>, objects: &[IndoorPoint]) -> Vec<Box<dyn NamedAnswerer>> {
    let cfg = VipTreeConfig::default();
    let vip = VipTree::build(venue.clone(), &cfg).unwrap();
    vip.attach_objects(objects);
    let ip = IpTree::build(venue.clone(), &cfg).unwrap();
    ip.attach_objects(objects);
    let mut aw = DistAw::new(venue.clone());
    aw.attach_objects(objects);
    let mut mx = DistMx::build(venue.clone());
    mx.attach_objects(objects);
    let mx = Arc::new(mx);
    let mut awp = DistAwPlus::new(venue.clone(), mx.clone());
    awp.attach_objects(objects);
    let mut g = GTree::build(venue.clone(), &GTreeConfig::default());
    g.attach_objects(objects);
    let mut r = Road::build(venue.clone(), &RoadConfig::default());
    r.attach_objects(objects);
    vec![
        Box::new(vip),
        Box::new(ip),
        Box::new(aw),
        Box::new(ArcMx(mx)),
        Box::new(awp),
        Box::new(g),
        Box::new(r),
    ]
}

/// The mixed stream every index answers: per pair a shortest-distance and
/// a shortest-path request, per point a kNN and a range request,
/// interleaved so no index sees a homogeneous prefix.
fn request_stream(venue: &Venue, pairs: usize, points: usize, seed: u64) -> Vec<QueryRequest> {
    let mut reqs = Vec::new();
    for (s, t) in workload::query_pairs(venue, pairs, seed) {
        reqs.push(QueryRequest::ShortestDistance { s, t });
        reqs.push(QueryRequest::ShortestPath { s, t });
    }
    for q in workload::query_points(venue, points, seed ^ 0xCD) {
        reqs.push(QueryRequest::Knn { q, k: 4 });
        reqs.push(QueryRequest::Range { q, radius: 120.0 });
    }
    workload::shuffle(&mut reqs, seed ^ 0x515);
    reqs
}

fn check_agreement(venue: Arc<Venue>, seed: u64, pairs: usize, points: usize) {
    let objects = workload::place_objects(&venue, 15, seed ^ 0xAB);
    let indexes = all_indexes(&venue, &objects);
    let reqs = request_stream(&venue, pairs, points, seed);

    let answers: Vec<Vec<QueryResponse>> = indexes.iter().map(|ix| ix.answer_all(&reqs)).collect();

    // The VIP-tree engine must answer the same stream bit-identically to
    // the trait surface (indexes[0] is the VIP-tree).
    {
        let vip = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        vip.attach_objects(&objects);
        let engine = QueryEngine::for_vip(Arc::new(vip)).with_threads(2);
        let engine_answers = engine.execute_batch(&reqs);
        assert_eq!(
            engine_answers, answers[0],
            "QueryEngine::execute_batch drifted from the trait surface"
        );
    }

    // Per-index self-consistency, *including* the reference index: every
    // reported path must be walkable with a matching length, and must
    // agree with the same index's shortest-distance answer for the same
    // pair (requests are Eq by bit pattern, so the SD slot of an SP slot
    // is found by map lookup).
    let sd_slot_of: std::collections::HashMap<&QueryRequest, usize> = reqs
        .iter()
        .enumerate()
        .filter(|(_, r)| r.kind() == QueryKind::ShortestDistance)
        .map(|(slot, r)| (r, slot))
        .collect();
    for (ix, ans) in indexes.iter().zip(&answers) {
        for (slot, req) in reqs.iter().enumerate() {
            let QueryResponse::ShortestPath(p_opt) = &ans[slot] else {
                continue;
            };
            let QueryRequest::ShortestPath { s, t } = req else {
                panic!("{}: SP response for non-SP request", ix.name2());
            };
            let sd_req = QueryRequest::ShortestDistance { s: *s, t: *t };
            let QueryResponse::ShortestDistance(d) = &ans[sd_slot_of[&sd_req]] else {
                panic!("{}: SD response missing", ix.name2());
            };
            match (p_opt, d) {
                (Some(p), Some(d)) => {
                    let len = p
                        .validate(&venue)
                        .unwrap_or_else(|e| panic!("{}: invalid path: {e}", ix.name2()));
                    assert!(
                        (len - p.length).abs() < 1e-6 * len.max(1.0),
                        "{}: reported {} vs walked {len}",
                        ix.name2(),
                        p.length
                    );
                    assert!(
                        (p.length - d).abs() < 1e-9 * d.max(1.0),
                        "{}: SP length {} != own SD {d}",
                        ix.name2(),
                        p.length
                    );
                }
                (None, None) => {}
                _ => panic!("{}: SP and SD disagree on reachability", ix.name2()),
            }
        }
    }

    for slot in 0..reqs.len() {
        let reference = &answers[0][slot];
        for (ix, ans) in indexes.iter().zip(&answers).skip(1) {
            let got = &ans[slot];
            assert_eq!(
                got.kind(),
                reference.kind(),
                "{}: response kind drifted at slot {slot}",
                ix.name2()
            );
            match (reference, got) {
                (QueryResponse::ShortestDistance(r), QueryResponse::ShortestDistance(v)) => {
                    match (r, v) {
                        (Some(r), Some(v)) => assert!(
                            (r - v).abs() < 1e-6 * r.max(1.0),
                            "{} disagrees on SD: {v} vs {r}",
                            ix.name2()
                        ),
                        (Some(_), None) => panic!("{} says unreachable", ix.name2()),
                        (None, Some(_)) => panic!("{} says reachable", ix.name2()),
                        (None, None) => {}
                    }
                }
                (QueryResponse::ShortestPath(r), QueryResponse::ShortestPath(v)) => match (r, v) {
                    (Some(r), Some(v)) => assert!(
                        (r.length - v.length).abs() < 1e-6 * r.length.max(1.0),
                        "{} disagrees on SP length",
                        ix.name2()
                    ),
                    (Some(_), None) | (None, Some(_)) => {
                        panic!("{} disagrees on SP reachability", ix.name2())
                    }
                    (None, None) => {}
                },
                (QueryResponse::Knn(r), QueryResponse::Knn(v)) => {
                    assert_eq!(r.len(), v.len(), "{} kNN count", ix.name2());
                    for (a, b) in r.iter().zip(v) {
                        assert!(
                            (a.1 - b.1).abs() < 1e-6 * a.1.max(1.0),
                            "{} kNN distance mismatch",
                            ix.name2()
                        );
                    }
                }
                (QueryResponse::Range(r), QueryResponse::Range(v)) => {
                    assert_eq!(r.len(), v.len(), "{} range count", ix.name2());
                }
                _ => unreachable!("kinds already matched"),
            }
        }
    }
}

#[test]
fn agreement_on_random_venues() {
    for seed in [3u64, 1234, 98765] {
        check_agreement(Arc::new(random_venue(seed)), seed, 12, 5);
    }
}

#[test]
fn agreement_on_melbourne_central() {
    let venue = Arc::new(presets::melbourne_central().build());
    check_agreement(venue, 31, 20, 8);
}
