//! Cross-crate integration: every index must return identical shortest
//! distances, shortest-path lengths, kNN results and range results — on
//! random venues and on the calibrated MC preset.

use indoor_spatial::baselines::{DistAw, DistAwPlus, DistMx};
use indoor_spatial::gtree::{GTree, GTreeConfig};
use indoor_spatial::prelude::*;
use indoor_spatial::road::{Road, RoadConfig};
use indoor_spatial::synth::{presets, random_venue, workload};
use std::sync::Arc;

fn all_indexes(venue: &Arc<Venue>, objects: &[IndoorPoint]) -> Vec<Box<dyn IndoorIndexAndObjects>> {
    let cfg = VipTreeConfig::default();
    let mut vip = VipTree::build(venue.clone(), &cfg).unwrap();
    vip.attach_objects(objects);
    let mut ip = IpTree::build(venue.clone(), &cfg).unwrap();
    ip.attach_objects(objects);
    let mut aw = DistAw::new(venue.clone());
    aw.attach_objects(objects);
    let mut mx = DistMx::build(venue.clone());
    mx.attach_objects(objects);
    let mx = Arc::new(mx);
    let mut awp = DistAwPlus::new(venue.clone(), mx.clone());
    awp.attach_objects(objects);
    let mut g = GTree::build(venue.clone(), &GTreeConfig::default());
    g.attach_objects(objects);
    let mut r = Road::build(venue.clone(), &RoadConfig::default());
    r.attach_objects(objects);
    vec![
        Box::new(vip),
        Box::new(ip),
        Box::new(aw),
        Box::new(ArcMx(mx)),
        Box::new(awp),
        Box::new(g),
        Box::new(r),
    ]
}

/// Object-safe union of the two query traits.
trait IndoorIndexAndObjects {
    fn name2(&self) -> &'static str;
    fn sd(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64>;
    fn sp(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath>;
    fn knn2(&self, q: &IndoorPoint, k: usize) -> Vec<(indoor_spatial::model::ObjectId, f64)>;
    fn range2(&self, q: &IndoorPoint, r: f64) -> Vec<(indoor_spatial::model::ObjectId, f64)>;
}

impl<T: IndoorIndex + ObjectQueries> IndoorIndexAndObjects for T {
    fn name2(&self) -> &'static str {
        self.name()
    }
    fn sd(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.shortest_distance(s, t)
    }
    fn sp(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        self.shortest_path(s, t)
    }
    fn knn2(&self, q: &IndoorPoint, k: usize) -> Vec<(indoor_spatial::model::ObjectId, f64)> {
        self.knn(q, k)
    }
    fn range2(&self, q: &IndoorPoint, r: f64) -> Vec<(indoor_spatial::model::ObjectId, f64)> {
        self.range(q, r)
    }
}

/// `Arc<DistMx>` wrapper so the matrix can be shared with DistAw++.
struct ArcMx(Arc<DistMx>);
impl IndoorIndexAndObjects for ArcMx {
    fn name2(&self) -> &'static str {
        self.0.name()
    }
    fn sd(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.0.shortest_distance(s, t)
    }
    fn sp(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        self.0.shortest_path(s, t)
    }
    fn knn2(&self, q: &IndoorPoint, k: usize) -> Vec<(indoor_spatial::model::ObjectId, f64)> {
        self.0.knn(q, k)
    }
    fn range2(&self, q: &IndoorPoint, r: f64) -> Vec<(indoor_spatial::model::ObjectId, f64)> {
        self.0.range(q, r)
    }
}

fn check_agreement(venue: Arc<Venue>, seed: u64, pairs: usize, points: usize) {
    let objects = workload::place_objects(&venue, 15, seed ^ 0xAB);
    let indexes = all_indexes(&venue, &objects);

    for (s, t) in workload::query_pairs(&venue, pairs, seed) {
        let mut reference: Option<f64> = None;
        for ix in &indexes {
            let d = ix.sd(&s, &t);
            match (reference, d) {
                (None, Some(v)) => reference = Some(v),
                (Some(r), Some(v)) => assert!(
                    (r - v).abs() < 1e-6 * r.max(1.0),
                    "{} disagrees on SD: {v} vs {r}",
                    ix.name2()
                ),
                (Some(_), None) => panic!("{} says unreachable", ix.name2()),
                (None, None) => {}
            }
            // Path length must equal distance and be walkable.
            if let Some(p) = ix.sp(&s, &t) {
                let len = p
                    .validate(&venue)
                    .unwrap_or_else(|e| panic!("{}: invalid path: {e}", ix.name2()));
                assert!(
                    (len - p.length).abs() < 1e-6 * len.max(1.0),
                    "{}: reported {} vs walked {len}",
                    ix.name2(),
                    p.length
                );
                if let Some(d) = d {
                    assert!((p.length - d).abs() < 1e-9 * d.max(1.0));
                }
            }
        }
    }

    for q in workload::query_points(&venue, points, seed ^ 0xCD) {
        let knns: Vec<_> = indexes.iter().map(|ix| ix.knn2(&q, 4)).collect();
        let ranges: Vec<_> = indexes.iter().map(|ix| ix.range2(&q, 120.0)).collect();
        for (i, ix) in indexes.iter().enumerate().skip(1) {
            assert_eq!(knns[0].len(), knns[i].len(), "{} kNN count", ix.name2());
            for (a, b) in knns[0].iter().zip(&knns[i]) {
                assert!(
                    (a.1 - b.1).abs() < 1e-6 * a.1.max(1.0),
                    "{} kNN distance mismatch",
                    ix.name2()
                );
            }
            assert_eq!(
                ranges[0].len(),
                ranges[i].len(),
                "{} range count",
                ix.name2()
            );
        }
    }
}

#[test]
fn agreement_on_random_venues() {
    for seed in [3u64, 1234, 98765] {
        check_agreement(Arc::new(random_venue(seed)), seed, 12, 5);
    }
}

#[test]
fn agreement_on_melbourne_central() {
    let venue = Arc::new(presets::melbourne_central().build());
    check_agreement(venue, 31, 20, 8);
}
