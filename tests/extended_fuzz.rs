//! Extended randomised cross-validation, run on demand:
//!
//! ```sh
//! cargo test --release --test extended_fuzz -- --ignored
//! ```
//!
//! Sweeps many more venue seeds than the default suites, cross-checking
//! the VIP-tree, IP-tree and both road-network competitors against the
//! Dijkstra oracle for distances, paths, kNN and range — the closest thing
//! to a soak test the repository has.

use indoor_spatial::graph::DijkstraEngine;
use indoor_spatial::gtree::{GTree, GTreeConfig};
use indoor_spatial::prelude::*;
use indoor_spatial::road::{Road, RoadConfig};
use indoor_spatial::synth::{random_venue, workload};
use std::sync::Arc;

fn oracle(
    venue: &Venue,
    engine: &mut DijkstraEngine,
    s: &IndoorPoint,
    t: &IndoorPoint,
) -> Option<f64> {
    let direct = s.direct_distance(venue, t);
    let via = engine
        .point_to_point(venue.d2d(), &s.door_seeds(venue), &t.door_seeds(venue))
        .map(|(d, _)| d);
    match (direct, via) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

#[test]
#[ignore = "soak test: ~200 venue seeds, run with --ignored"]
fn soak_all_indexes_against_oracle() {
    for seed in 0u64..200 {
        let venue = Arc::new(random_venue(seed));
        let mut engine = DijkstraEngine::new(venue.num_doors());

        let vip = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        let g = GTree::build(venue.clone(), &GTreeConfig::default());
        let r = Road::build(venue.clone(), &RoadConfig::default());

        for (s, t) in workload::query_pairs(&venue, 25, seed ^ 0xF00D) {
            let want = oracle(&venue, &mut engine, &s, &t);
            for (name, got) in [
                ("vip", vip.shortest_distance_points(&s, &t)),
                ("gtree", g.shortest_distance_points(&s, &t)),
                ("road", r.shortest_distance_points(&s, &t)),
            ] {
                match (want, got) {
                    (Some(w), Some(v)) => assert!(
                        (w - v).abs() < 1e-6 * w.max(1.0),
                        "seed {seed} {name}: got {v} want {w}"
                    ),
                    (None, None) => {}
                    _ => panic!("seed {seed} {name}: reachability mismatch"),
                }
            }
            if let Some(p) = vip.shortest_path_points(&s, &t) {
                let len = p.validate(&venue).unwrap();
                assert!((len - p.length).abs() < 1e-6 * len.max(1.0), "seed {seed}");
            }
        }

        let objects = workload::place_objects(&venue, 10, seed ^ 0xBEEF);
        vip.attach_objects(&objects);
        for q in workload::query_points(&venue, 5, seed ^ 0xCAFE) {
            let got = vip.knn(&q, 4);
            let mut want: Vec<f64> = objects
                .iter()
                .filter_map(|o| oracle(&venue, &mut engine, &q, o))
                .collect();
            want.sort_by(f64::total_cmp);
            assert_eq!(got.len(), 4.min(want.len()), "seed {seed}");
            for (i, (_, d)) in got.iter().enumerate() {
                assert!(
                    (d - want[i]).abs() < 1e-6 * want[i].max(1.0),
                    "seed {seed} rank {i}: got {d} want {}",
                    want[i]
                );
            }
        }
        assert_eq!(vip.decompose_fallback_count(), 0, "seed {seed}");
    }
}
