//! Crash-consistency torture: every I/O step of a mutation script fails,
//! in every failure mode, and recovery must **recover-or-reject**.
//!
//! The harness dry-runs a deterministic churn script against a clean
//! in-memory [`FaultStorage`] to count its fault-eligible storage
//! operations, then replays the script once per operation index `k` with
//! a one-shot fault armed at step `k` — cycling through ENOSPC (partial
//! write, no crash), torn write (partial bytes + crash), crash-before,
//! crash-after, and sync failure — followed by a process-crash or
//! power-loss restart. After each restart the recovered service must be
//! byte-identical (all five query kinds, version, epoch) to a volatile
//! reference service that applied exactly the journalled prefix of the
//! acknowledged history:
//!
//! * **process crash**: every acknowledged mutation survives (appends are
//!   flushed), plus at most the one mutation that crashed mid-append;
//! * **power loss**: at least the last completed snapshot survives
//!   (snapshots are fsynced end-to-end), never more than acknowledged;
//! * **either way**: never a reordered, gapped, or silently corrupt
//!   state — structural damage beyond a torn tail is a typed
//!   [`PersistError`], enforced here by recovery succeeding once the
//!   storage is healthy again.
//!
//! Along the way the script asserts the journal-before-apply invariant
//! live: a mutation that fails to journal leaves the version counter and
//! the served answers untouched (no memory/log divergence), and a shard
//! whose log cannot be rolled back degrades to read-only instead of
//! acknowledging unjournalled writes.
//!
//! The currently running schedule is written to
//! `target/fault-torture/last-schedule.txt` before each run, so a failing
//! CI job uploads the exact `(seed, step, kind, mode)` to reproduce.

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{random_venue, workload};
use indoor_spatial::vip::{CrashMode, FaultAt, FaultKind, FaultStorage, Storage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

const LABELS: [&str; 3] = ["cafe", "atm", "exit"];

/// Valid-by-construction delta batches (mirrors `tests/persistence.rs`).
#[derive(Default)]
struct LiveSet {
    live: Vec<bool>,
}

impl LiveSet {
    fn seeded(n: usize) -> LiveSet {
        LiveSet {
            live: vec![true; n],
        }
    }

    fn random_batch(&mut self, pool: &[IndoorPoint], rng: &mut StdRng) -> Vec<ObjectUpdate> {
        let n_ops = rng.gen_range(1..5);
        let mut batch = Vec::new();
        for _ in 0..n_ops {
            let live_ids: Vec<u32> = self
                .live
                .iter()
                .enumerate()
                .filter(|(_, l)| **l)
                .map(|(i, _)| i as u32)
                .collect();
            let op = rng.gen_range(0..3u32);
            let point = pool[rng.gen_range(0..pool.len())];
            let delta = if live_ids.is_empty() || op == 0 {
                let id = self.live.iter().position(|l| !l).unwrap_or_else(|| {
                    self.live.push(false);
                    self.live.len() - 1
                });
                self.live[id] = true;
                ObjectDelta::Insert {
                    id: ObjectId(id as u32),
                    at: point,
                }
            } else if op == 1 {
                let id = live_ids[rng.gen_range(0..live_ids.len())];
                self.live[id as usize] = false;
                ObjectDelta::Remove { id: ObjectId(id) }
            } else {
                let id = live_ids[rng.gen_range(0..live_ids.len())];
                ObjectDelta::Move {
                    id: ObjectId(id),
                    to: point,
                }
            };
            batch.push(ObjectUpdate {
                delta,
                labels: vec![LABELS[rng.gen_range(0..LABELS.len())].to_string()],
            });
        }
        batch
    }
}

struct Fixture {
    venue: Arc<Venue>,
    pool: Vec<IndoorPoint>,
    objects: Vec<IndoorPoint>,
    keywords: Vec<(IndoorPoint, Vec<String>)>,
}

impl Fixture {
    fn new(venue: Arc<Venue>, seed: u64) -> Fixture {
        let pool = workload::place_objects(&venue, 24, seed ^ 0xF1);
        let objects = workload::place_objects(&venue, 8, seed ^ 0xF2);
        let keywords = workload::cycling_labels(&objects, "cafe");
        Fixture {
            venue,
            pool,
            objects,
            keywords,
        }
    }

    fn config(&self) -> ShardConfig {
        ShardConfig {
            threads: 1,
            objects: self.objects.clone(),
            keywords: self.keywords.clone(),
            ..ShardConfig::default()
        }
    }
}

/// One scripted step after venue registration.
#[derive(Debug, Clone)]
enum Op {
    Snapshot,
    Deltas(Vec<ObjectDelta>),
    Keywords(Vec<ObjectUpdate>),
    Attach(Vec<IndoorPoint>),
}

/// The deterministic churn script for one seed: interleaved delta,
/// keyword, attach and snapshot steps.
fn script(f: &Fixture, seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x70_57_0C);
    let mut objects = LiveSet::seeded(f.objects.len());
    let mut kw_objects = LiveSet::seeded(f.keywords.len());
    let mut ops = Vec::new();
    for round in 0u64..3 {
        if round == 1 {
            ops.push(Op::Snapshot);
        }
        let deltas: Vec<ObjectDelta> = objects
            .random_batch(&f.pool, &mut rng)
            .into_iter()
            .map(|u| u.delta)
            .collect();
        ops.push(Op::Deltas(deltas));
        ops.push(Op::Keywords(kw_objects.random_batch(&f.pool, &mut rng)));
    }
    // One wholesale replacement last (fresh positional ids, epoch bump).
    ops.push(Op::Attach(workload::place_objects(
        &f.venue,
        6,
        seed ^ 0xA7,
    )));
    ops
}

/// Apply one mutation op to a service, returning the service's verdict.
fn apply(service: &IndoorService, id: VenueId, op: &Op) -> Result<(), ServiceError> {
    match op {
        Op::Snapshot => unreachable!("snapshots are not mutations"),
        Op::Deltas(d) => service.update_objects(id, d).map(|_| ()),
        Op::Keywords(u) => service.update_keyword_objects(id, u).map(|_| ()),
        Op::Attach(o) => service.attach_objects(id, o),
    }
}

/// What one faulted run acknowledged before the crash.
struct RunOutcome {
    /// `add_venue` returned `Ok`.
    venue_acked: bool,
    /// `add_venue` returned `Err` — the Create record may or may not
    /// have landed, so a recovered venue with zero mutations is legal.
    venue_ambiguous: bool,
    /// Mutations acknowledged `Ok`, in order.
    acked: Vec<Op>,
    /// The mutation that failed with the storage crashed mid-append: its
    /// record may or may not be in the log.
    pending: Option<Op>,
    /// Version covered by the last acknowledged snapshot (the power-loss
    /// durability floor).
    snapshot_floor: u64,
}

/// Every query kind, asserted byte-identical between two services.
fn assert_same_answers(
    recovered: &IndoorService,
    reference: &IndoorService,
    id: VenueId,
    f: &Fixture,
    ctx: &str,
) {
    let mut reqs: Vec<QueryRequest> = Vec::new();
    for q in workload::query_points(&f.venue, 3, 0x77) {
        reqs.push(QueryRequest::Knn { q, k: 3 });
        reqs.push(QueryRequest::Range { q, radius: 120.0 });
        for label in ["cafe", "atm", "missing"] {
            reqs.push(QueryRequest::KnnKeyword {
                q,
                k: 2,
                keyword: label.into(),
            });
        }
    }
    for (s, t) in workload::query_pairs(&f.venue, 2, 0x78) {
        reqs.push(QueryRequest::ShortestDistance { s, t });
        reqs.push(QueryRequest::ShortestPath { s, t });
    }
    for req in &reqs {
        assert_eq!(
            recovered.execute(id, req).unwrap(),
            reference.execute(id, req).unwrap(),
            "{ctx}: diverged on {req:?}"
        );
    }
    assert_eq!(
        recovered.version(id).unwrap(),
        reference.version(id).unwrap(),
        "{ctx}: version counters diverged"
    );
    assert_eq!(
        recovered.epoch(id).unwrap(),
        reference.epoch(id).unwrap(),
        "{ctx}: epoch counters diverged"
    );
}

/// Record the schedule about to run, so a failing CI job can upload it.
fn log_schedule(line: &str) {
    let dir = PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
        .join("fault-torture");
    if std::fs::create_dir_all(&dir).is_ok() {
        if let Ok(mut file) = std::fs::File::create(dir.join("last-schedule.txt")) {
            let _ = writeln!(file, "{line}");
        }
    }
}

/// Run the script with a one-shot fault armed at storage op `k`, then
/// crash with `mode`. Stops at the first crash-flavoured error; plain
/// I/O errors (ENOSPC, sync failure) continue the script, exercising the
/// rollback path under later traffic.
fn run_faulted(
    f: &Fixture,
    ops: &[Op],
    storage: &FaultStorage,
    k: u64,
    kind: FaultKind,
    mode: CrashMode,
) -> RunOutcome {
    let dir = PathBuf::from("/durable");
    storage.set_fault(FaultAt::Op(k), kind);
    let shared: Arc<dyn Storage> = Arc::new(storage.clone());

    let mut out = RunOutcome {
        venue_acked: false,
        venue_ambiguous: false,
        acked: Vec::new(),
        pending: None,
        snapshot_floor: 0,
    };
    let service = match IndoorService::open_with_storage(&dir, shared) {
        Ok((opened, _)) => Some(opened),
        // The fault fired inside the initial open (only possible when a
        // previous run left state — here the fs is fresh, so this is a
        // reject, which trivially satisfies recover-or-reject).
        Err(_) => None,
    };
    if let Some(service) = service {
        run_script(f, ops, storage, k, kind, &service, &mut out);
        // The machine dies (even if no crash fault fired: a run that
        // survived an ENOSPC still has to recover from the end-state).
        storage.crash(mode);
        drop(service);
    } else {
        storage.crash(mode);
    }
    out
}

/// The scripted session between open and the crash.
fn run_script(
    f: &Fixture,
    ops: &[Op],
    storage: &FaultStorage,
    k: u64,
    kind: FaultKind,
    service: &IndoorService,
    out: &mut RunOutcome,
) {
    let dir = PathBuf::from("/durable");
    let id = match service.add_venue(f.venue.clone(), f.config()) {
        Ok(id) => {
            out.venue_acked = true;
            id
        }
        Err(_) => {
            out.venue_ambiguous = true;
            return;
        }
    };
    for op in ops {
        if let Op::Snapshot = op {
            if service.save_snapshot(&dir).is_ok() {
                out.snapshot_floor = service.version(id).unwrap();
            } else if storage.crashed() {
                break;
            }
            continue;
        }
        match apply(service, id, op) {
            Ok(()) => {
                out.acked.push(op.clone());
                // Journal-before-apply: an acknowledged mutation bumped
                // the version by exactly one.
                assert_eq!(
                    service.version(id).unwrap(),
                    out.acked.len() as u64,
                    "acked mutation count and version diverged (k={k}, {kind:?})"
                );
            }
            Err(_) if storage.crashed() => {
                // Crashed mid-append: the record may or may not have
                // landed, but it was NOT acknowledged.
                out.pending = Some(op.clone());
                break;
            }
            Err(_) => {
                // Plain I/O failure (or a degraded shard refusing work):
                // the mutation must not have moved the version, and the
                // shard keeps serving reads.
                assert_eq!(
                    service.version(id).unwrap(),
                    out.acked.len() as u64,
                    "failed mutation moved the version (k={k}, {kind:?})"
                );
                let q = f.pool[0];
                service
                    .execute(id, &QueryRequest::Knn { q, k: 1 })
                    .expect("failed mutation must not take down reads");
            }
        }
    }
}

/// Reopen after the crash and check the recover-or-reject contract.
fn verify_recovery(f: &Fixture, storage: &FaultStorage, out: &RunOutcome, mode: CrashMode, k: u64) {
    let dir = PathBuf::from("/durable");
    let shared: Arc<dyn Storage> = Arc::new(storage.clone());
    // With the storage healthy again, recovery must succeed — every
    // fault in the schedule leaves at worst a torn tail, never damage
    // recovery refuses (refusals are reserved for real corruption, see
    // the double-fault tests in tests/persistence.rs).
    let (recovered, _report) = IndoorService::open_with_storage(&dir, shared)
        .unwrap_or_else(|e| panic!("recovery rejected a recoverable history (k={k}): {e}"));

    let venues = recovered.venues();
    if venues.is_empty() {
        assert!(
            !out.venue_acked || mode == CrashMode::Power,
            "process crash lost an acknowledged venue (k={k})"
        );
        return;
    }
    assert!(
        out.venue_acked || out.venue_ambiguous,
        "recovered a venue that was never registered (k={k})"
    );
    let id = venues[0];
    let v = recovered.version(id).unwrap();
    let upper = (out.acked.len() + out.pending.iter().count()) as u64;
    assert!(
        v <= upper,
        "recovered version {v} exceeds acknowledged history {upper} (k={k})"
    );
    if out.venue_acked && mode == CrashMode::Process {
        assert!(
            v >= out.acked.len() as u64,
            "process crash lost acknowledged mutations: {v} < {} (k={k})",
            out.acked.len()
        );
    }
    if mode == CrashMode::Power {
        assert!(
            v >= out.snapshot_floor,
            "power loss fell below the snapshot floor: {v} < {} (k={k})",
            out.snapshot_floor
        );
    }

    // The recovered state must be byte-identical to a never-persisted
    // service that applied exactly the first `v` journalled mutations.
    let reference = IndoorService::new();
    let ref_id = reference.add_venue(f.venue.clone(), f.config()).unwrap();
    assert_eq!(ref_id, id);
    let history = out.acked.iter().chain(out.pending.iter());
    for op in history.take(v as usize) {
        apply(&reference, ref_id, op).expect("journalled prefix replays");
    }
    assert_same_answers(&recovered, &reference, id, f, &format!("k={k} {mode:?}"));
}

/// Count the script's fault-eligible storage operations on a clean run.
fn dry_run_ops(f: &Fixture, ops: &[Op]) -> u64 {
    let storage = FaultStorage::new();
    let shared: Arc<dyn Storage> = Arc::new(storage.clone());
    let (service, _) = IndoorService::open_with_storage("/durable", shared).unwrap();
    let id = service.add_venue(f.venue.clone(), f.config()).unwrap();
    for op in ops {
        match op {
            Op::Snapshot => {
                service.save_snapshot("/durable").unwrap();
            }
            _ => apply(&service, id, op).unwrap(),
        }
    }
    storage.ops()
}

/// Sweep every `stride`-th fault point of the seed's script, across the
/// kind cycle and both crash modes.
fn torture_sweep(seed: u64, stride: u64) {
    let f = Fixture::new(Arc::new(random_venue(seed % 23)), seed);
    let ops = script(&f, seed);
    let total = dry_run_ops(&f, &ops);
    assert!(total > 10, "script too short to torture ({total} ops)");

    let kinds = |k: u64| match k % 5 {
        0 => FaultKind::Enospc {
            keep: (k % 7) as usize,
        },
        1 => FaultKind::TornWrite {
            keep: (k % 5) as usize,
        },
        2 => FaultKind::CrashBefore,
        3 => FaultKind::CrashAfter,
        _ => FaultKind::SyncFail,
    };
    for k in (0..total).step_by(stride as usize) {
        let kind = kinds(k);
        let modes: &[CrashMode] = if k % 3 == 0 {
            &[CrashMode::Process, CrashMode::Power]
        } else {
            &[CrashMode::Process]
        };
        for &mode in modes {
            log_schedule(&format!(
                "seed={seed} step={k}/{total} kind={kind:?} mode={mode:?}"
            ));
            let storage = FaultStorage::new();
            let out = run_faulted(&f, &ops, &storage, k, kind, mode);
            verify_recovery(&f, &storage, &out, mode, k);
        }
    }
}

/// The fixed-seed sweep CI always runs: every fault point of one script.
#[test]
fn every_fault_point_recovers_or_rejects() {
    torture_sweep(0xF0_17, 1);
    log_schedule("fixed sweep: all clear");
}

/// A short randomized burst on top of the fixed sweep. Deterministic by
/// default; CI sets `FAULT_TORTURE_BURST` (sweep count) and the seed
/// derives from the clock — printed, and recorded in the schedule file,
/// so a failure is reproducible via `FAULT_TORTURE_SEED`.
#[test]
fn randomized_torture_burst() {
    let burst: u64 = std::env::var("FAULT_TORTURE_BURST")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let seed: u64 = match std::env::var("FAULT_TORTURE_SEED") {
        Ok(s) => s.parse().expect("FAULT_TORTURE_SEED must be a u64"),
        Err(_) if std::env::var("FAULT_TORTURE_BURST").is_ok() => std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_secs(),
        Err(_) => 0xB00_7ED,
    };
    println!(
        "fault torture burst: seed={seed} sweeps={burst} (rerun with FAULT_TORTURE_SEED={seed})"
    );
    for i in 0..burst {
        // Stride 3 keeps the burst short; the fixed sweep covers density.
        torture_sweep(seed.wrapping_add(i), 3);
    }
    log_schedule("randomized burst: all clear");
}
