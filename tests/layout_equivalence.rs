//! Layout-equivalence contract of the implicit slab refactor: flipping
//! `set_hot_layout` between the SoA slab walk (the default) and the
//! original pointer walk must be **invisible in the answers** — every
//! one of the five typed query kinds returns byte-identical responses on
//! arbitrary venues, at one and four worker threads. The slab paths
//! reorder memory and loop nests but preserve fold order and tie-breaks
//! exactly (DESIGN.md §14), so the bar is `to_bits` equality, not
//! tolerance.

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, random_venue, workload};
use indoor_spatial::vip::KeywordObjects;
use proptest::prelude::*;
use std::sync::Arc;

const K: usize = 3;
const RADIUS: f64 = 120.0;
const KEYWORD: &str = "cafe";

fn tree_for(venue: &Arc<Venue>, seed: u64) -> (Arc<VipTree>, Arc<KeywordObjects>) {
    let objects = workload::place_objects(venue, 16, seed ^ 0x51);
    let labelled = workload::cycling_labels(&objects, KEYWORD);
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    tree.attach_objects(&objects);
    let kw = Arc::new(KeywordObjects::build(tree.ip_tree(), &labelled));
    (Arc::new(tree), kw)
}

/// All five request kinds, interleaved so neither layout sees a
/// homogeneous prefix.
fn mixed_stream(venue: &Venue, n: usize, seed: u64) -> Vec<QueryRequest> {
    let mut reqs = Vec::new();
    for (s, t) in workload::query_pairs(venue, n, seed) {
        reqs.push(QueryRequest::ShortestDistance { s, t });
        reqs.push(QueryRequest::ShortestPath { s, t });
    }
    for q in workload::query_points(venue, n, seed ^ 0xCD) {
        reqs.push(QueryRequest::Knn { q, k: K });
        reqs.push(QueryRequest::Range { q, radius: RADIUS });
        reqs.push(QueryRequest::KnnKeyword {
            q,
            k: K,
            keyword: KEYWORD.into(),
        });
    }
    reqs
}

fn assert_bit_identical(slot: usize, got: &QueryResponse, want: &QueryResponse) {
    let bits = |v: &[(indoor_spatial::model::ObjectId, f64)]| -> Vec<(u32, u64)> {
        v.iter().map(|(o, d)| (o.0, d.to_bits())).collect()
    };
    assert_eq!(got.kind(), want.kind(), "slot {slot}: kind");
    match (got, want) {
        (QueryResponse::Knn(a), QueryResponse::Knn(b))
        | (QueryResponse::Range(a), QueryResponse::Range(b))
        | (QueryResponse::KnnKeyword(a), QueryResponse::KnnKeyword(b)) => {
            assert_eq!(bits(a), bits(b), "slot {slot}: objects");
        }
        (QueryResponse::ShortestDistance(a), QueryResponse::ShortestDistance(b)) => {
            assert_eq!(
                a.map(f64::to_bits),
                b.map(f64::to_bits),
                "slot {slot}: distance"
            );
        }
        (QueryResponse::ShortestPath(a), QueryResponse::ShortestPath(b)) => {
            assert_eq!(
                a.as_ref().map(|p| &p.doors),
                b.as_ref().map(|p| &p.doors),
                "slot {slot}: path doors"
            );
            assert_eq!(
                a.as_ref().map(|p| p.length.to_bits()),
                b.as_ref().map(|p| p.length.to_bits()),
                "slot {slot}: path length"
            );
        }
        _ => unreachable!("kinds already matched"),
    }
}

fn check_layouts_agree(venue: Arc<Venue>, seed: u64) {
    let (tree, kw) = tree_for(&venue, seed);
    let reqs = mixed_stream(&venue, 6, seed ^ 0x2E);
    for threads in [1usize, 4] {
        let engine = QueryEngine::for_vip(tree.clone())
            .with_threads(threads)
            .with_keywords(kw.clone());
        tree.set_hot_layout(true);
        let slab = engine.execute_batch(&reqs);
        tree.set_hot_layout(false);
        let ptr = engine.execute_batch(&reqs);
        tree.set_hot_layout(true);
        assert_eq!(slab.len(), ptr.len());
        for (slot, (a, b)) in slab.iter().zip(&ptr).enumerate() {
            assert_bit_identical(slot, a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Slab and pointer layouts answer identically on arbitrary venues.
    #[test]
    fn slab_and_pointer_layouts_answer_bit_identically(seed in 0u64..600) {
        check_layouts_agree(Arc::new(random_venue(seed)), seed);
    }

    /// Admissibility of the lower-bound layer on arbitrary venues: the
    /// interpolated PL bound never exceeds **any** true door-to-door
    /// matrix entry in its column (so skipping a candidate whose bound
    /// exceeds the current k-th distance can never drop an answer), and
    /// the full structural audit — bit-identical slab shadow values,
    /// cache-line-aligned rows, bracketing envelopes, admissible
    /// `kid_lb` — holds.
    #[test]
    fn interpolated_lower_bound_is_admissible(seed in 0u64..1_000) {
        let venue = Arc::new(random_venue(seed));
        let tree = IpTree::build(venue, &VipTreeConfig::default()).unwrap();
        tree.audit_layout();
        let slabs = tree.slabs();
        for n in 0..tree.num_nodes() as u32 {
            let m = &tree.node(n).matrix;
            for c in 0..m.cols.len() {
                let lb = slabs.pl_bound(n, c);
                for r in 0..m.rows.len() {
                    prop_assert!(
                        lb <= m.at(r, c),
                        "seed {seed}: node {n} col {c} row {r}: bound {lb} > true {}",
                        m.at(r, c)
                    );
                }
            }
        }
    }
}

/// The calibrated preset — the geometry the benchmarks gate on.
#[test]
fn layouts_agree_on_melbourne_central() {
    check_layouts_agree(Arc::new(presets::melbourne_central().build()), 0x1A);
}

/// Lazy leaf-grid contract: a tree whose door grids build on first
/// own-leaf touch answers byte-identically to one whose grids were all
/// force-built up front — across every query kind and both layouts
/// (`check_layouts_agree` runs the full mixed stream per tree). Also pins
/// the economics: the lazy tree builds only the touched leaves.
#[test]
fn lazy_leaf_grid_answers_match_eager() {
    let venue = Arc::new(presets::melbourne_central().build());
    let seed = 0x7C;
    let (lazy_tree, lazy_kw) = tree_for(&venue, seed);
    let (eager_tree, eager_kw) = tree_for(&venue, seed);
    eager_tree.ip_tree().build_leaf_grid();
    let total_leaves = eager_tree.ip_tree().leaf_grid_builds();
    assert!(total_leaves > 0, "preset venue has leaves");
    assert_eq!(
        lazy_tree.ip_tree().leaf_grid_builds(),
        0,
        "no grid builds before the first query"
    );

    let reqs = mixed_stream(&venue, 6, seed ^ 0x2E);
    let lazy_engine = QueryEngine::for_vip(lazy_tree.clone()).with_keywords(lazy_kw);
    let eager_engine = QueryEngine::for_vip(eager_tree.clone()).with_keywords(eager_kw);
    let lazy = lazy_engine.execute_batch(&reqs);
    let eager = eager_engine.execute_batch(&reqs);
    for (slot, (a, b)) in lazy.iter().zip(&eager).enumerate() {
        assert_bit_identical(slot, a, b);
    }

    let built = lazy_tree.ip_tree().leaf_grid_builds();
    assert!(built > 0, "own-leaf scans must have built grids");
    assert!(
        built <= total_leaves,
        "lazy build count bounded by the leaf count"
    );
    // Idempotence: forcing the rest builds each remaining leaf once.
    lazy_tree.ip_tree().build_leaf_grid();
    assert_eq!(lazy_tree.ip_tree().leaf_grid_builds(), total_leaves);
    lazy_tree.ip_tree().build_leaf_grid();
    assert_eq!(lazy_tree.ip_tree().leaf_grid_builds(), total_leaves);
}

/// Guard against the equivalence tests passing trivially: the toggle must
/// actually switch executed code paths. Only the slab walk consults the
/// lower-bound layer, so its candidate counter separates the two.
#[test]
fn hot_layout_toggle_switches_executed_paths() {
    use indoor_spatial::model::QueryStats;
    let venue = Arc::new(presets::melbourne_central().build());
    let (tree, _kw) = tree_for(&venue, 7);
    let points = workload::query_points(&venue, 20, 0x3B);

    tree.set_hot_layout(true);
    let mut slab_stats = QueryStats::default();
    for q in &points {
        tree.knn_with_stats(q, 5, &mut slab_stats);
    }
    assert!(
        slab_stats.bound_candidates > 0,
        "slab path never consulted the lower bound"
    );

    tree.set_hot_layout(false);
    let mut ptr_stats = QueryStats::default();
    for q in &points {
        tree.knn_with_stats(q, 5, &mut ptr_stats);
    }
    tree.set_hot_layout(true);
    assert_eq!(
        ptr_stats.bound_candidates, 0,
        "pointer path must not touch the bound layer"
    );
}
