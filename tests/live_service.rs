//! Live-service churn contract: `&self` mutation entry points run
//! concurrently with serving — hammering `update_objects` on one venue
//! while querying another never disturbs the other venue's answers — and
//! the version-stamped cache never serves a stale object answer while
//! shortest-distance/path answers survive object churn untouched.
//!
//! This is the concurrency smoke the CI `cargo test -q` step relies on
//! (see `.github/workflows/ci.yml`).

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{random_venue, workload};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One venue absorbs a sustained delta stream while two worker threads
/// query the other; every concurrent answer must be byte-identical to the
/// quiet-service answer, and the churned venue must land exactly on the
/// rebuilt reference.
#[test]
fn churn_on_one_venue_while_querying_another() {
    let venue_a = Arc::new(random_venue(61));
    let venue_b = Arc::new(random_venue(62));
    let objects_a = workload::place_objects(&venue_a, 20, 1);
    let objects_b = workload::place_objects(&venue_b, 20, 2);

    let service = IndoorService::new();
    let id_a = service
        .add_venue(
            venue_a.clone(),
            ShardConfig {
                threads: 1,
                objects: objects_a.clone(),
                ..ShardConfig::default()
            },
        )
        .unwrap();
    let id_b = service
        .add_venue(
            venue_b.clone(),
            ShardConfig {
                threads: 1,
                objects: objects_b.clone(),
                ..ShardConfig::default()
            },
        )
        .unwrap();

    // Expected venue-B answers, computed before any churn starts.
    let reqs_b: Vec<(VenueId, QueryRequest)> =
        workload::mixed_requests(&venue_b, 4, 3, 120.0, "cafe", 9)
            .into_iter()
            .map(|r| (id_b, r))
            .collect();
    let want_b = service.execute_batch(&reqs_b);
    assert!(want_b.iter().all(|r| r.is_ok()));

    // Always-valid delta stream for venue A: move the same ids between
    // two position pools, with an insert/remove pulse per round.
    let alt = workload::place_objects(&venue_a, 20, 3);
    const ROUNDS: usize = 40;
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let updater = scope.spawn(|| {
            for round in 0..ROUNDS {
                let pool = if round % 2 == 0 { &alt } else { &objects_a };
                let mut deltas: Vec<ObjectDelta> = (0..8)
                    .map(|i| ObjectDelta::Move {
                        id: ObjectId(i),
                        to: pool[i as usize],
                    })
                    .collect();
                let pulse = ObjectId(100 + (round % 4) as u32);
                if round % 8 < 4 {
                    deltas.push(ObjectDelta::Insert {
                        id: pulse,
                        at: pool[10 + round % 4],
                    });
                } else {
                    deltas.push(ObjectDelta::Remove { id: pulse });
                }
                service.update_objects(id_a, &deltas).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..2 {
            scope.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    let got = service.execute_batch(&reqs_b);
                    assert_eq!(got, want_b, "venue B must never observe venue A's churn");
                }
            });
        }
        updater.join().unwrap();
    });
    assert_eq!(service.version(id_a).unwrap(), ROUNDS as u64);
    assert_eq!(service.epoch(id_a).unwrap(), 0, "deltas are not rebuilds");
    assert_eq!(service.version(id_b).unwrap(), 0);

    // Venue A's final state equals a from-scratch rebuild of its live set.
    let live = service
        .engine(id_a)
        .unwrap()
        .tree()
        .ip()
        .object_index()
        .unwrap()
        .live_pairs();
    let reference = VipTree::build(venue_a.clone(), &VipTreeConfig::default()).unwrap();
    reference.attach_objects_with_ids(&live);
    for q in workload::query_points(&venue_a, 6, 4) {
        let req = QueryRequest::Knn { q, k: 4 };
        assert_eq!(
            service.execute(id_a, &req).unwrap(),
            QueryResponse::Knn(reference.knn(&q, 4)),
            "churned venue equals rebuilt reference"
        );
    }
}

/// Deltas bump the version (structurally invalidating object answers)
/// but cached shortest-distance/path answers survive: venue geometry is
/// immutable while registered.
#[test]
fn path_answers_survive_object_deltas() {
    let venue = Arc::new(random_venue(71));
    let objects = workload::place_objects(&venue, 12, 1);
    let service = IndoorService::new();
    let id = service
        .add_venue(
            venue.clone(),
            ShardConfig {
                threads: 1,
                objects: objects.clone(),
                ..ShardConfig::default()
            },
        )
        .unwrap();

    let q = workload::query_points(&venue, 1, 2)[0];
    let (s, t) = workload::query_pairs(&venue, 1, 3)[0];
    let knn = QueryRequest::Knn { q, k: 3 };
    let sd = QueryRequest::ShortestDistance { s, t };
    let sp = QueryRequest::ShortestPath { s, t };
    for req in [&knn, &sd, &sp] {
        service.execute(id, req).unwrap();
    }
    let before = service.stats();
    assert_eq!(before.total_cache_hits(), 0);

    service
        .update_objects(
            id,
            &[ObjectDelta::Move {
                id: ObjectId(0),
                to: objects[1],
            }],
        )
        .unwrap();
    assert_eq!(service.version(id).unwrap(), 1);
    assert_eq!(service.epoch(id).unwrap(), 0);

    // Path queries hit (stable stamp); the object query recomputes.
    service.execute(id, &sd).unwrap();
    service.execute(id, &sp).unwrap();
    let knn_after = service.execute(id, &knn).unwrap();
    let stats = service.stats();
    assert_eq!(stats.kind(QueryKind::ShortestDistance).cache_hits, 1);
    assert_eq!(stats.kind(QueryKind::ShortestPath).cache_hits, 1);
    assert_eq!(
        stats.kind(QueryKind::Knn).cache_hits,
        0,
        "no object answer may survive a delta"
    );
    // And the recomputed answer reflects the moved object.
    let reference = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    let mut live: Vec<(ObjectId, IndoorPoint)> = objects
        .iter()
        .enumerate()
        .map(|(i, &p)| (ObjectId(i as u32), p))
        .collect();
    live[0].1 = objects[1];
    reference.attach_objects_with_ids(&live);
    assert_eq!(knn_after, QueryResponse::Knn(reference.knn(&q, 3)));
}

/// The per-shard cache is bounded: a request stream larger than the
/// capacity evicts via the clock sweep, and the counters surface it.
#[test]
fn bounded_cache_evicts_under_pressure() {
    let venue = Arc::new(random_venue(81));
    let service = IndoorService::new();
    let id = service
        .add_venue(
            venue.clone(),
            ShardConfig {
                threads: 1,
                objects: workload::place_objects(&venue, 10, 1),
                cache_capacity: 8,
                ..ShardConfig::default()
            },
        )
        .unwrap();

    let points = workload::query_points(&venue, 30, 5);
    for &q in &points {
        service.execute(id, &QueryRequest::Knn { q, k: 2 }).unwrap();
    }
    let stats = service.stats();
    assert_eq!(stats.cache_capacity, 8);
    assert!(stats.cached_entries <= 8, "capacity bound holds");
    assert_eq!(
        stats.evictions,
        (points.len() - 8) as u64,
        "every insert past capacity evicts exactly once"
    );
    // Recency still works at the bound: a just-inserted entry hits.
    let last = QueryRequest::Knn {
        q: points[29],
        k: 2,
    };
    service.execute(id, &last).unwrap();
    assert_eq!(service.stats().total_cache_hits(), 1);
}

/// Out-of-band churn through a held engine handle (bypassing the
/// service's typed entry points entirely) still invalidates the cache:
/// stamps derive from the tree's own object generation, which every
/// mutation path bumps — the review-found bypass of the pre-generation
/// design.
#[test]
fn out_of_band_mutation_never_serves_stale_cache() {
    let venue = Arc::new(random_venue(87));
    let objects = workload::place_objects(&venue, 10, 1);
    let service = IndoorService::new();
    let id = service
        .add_venue(
            venue.clone(),
            ShardConfig {
                threads: 1,
                objects: objects.clone(),
                ..ShardConfig::default()
            },
        )
        .unwrap();
    let q = workload::query_points(&venue, 1, 2)[0];
    let req = QueryRequest::Knn { q, k: 3 };
    service.execute(id, &req).unwrap();
    service.execute(id, &req).unwrap();
    assert_eq!(service.stats().total_cache_hits(), 1, "warm entry exists");

    // Mutate behind the service's back, through the raw engine handle.
    let engine = service.engine(id).unwrap();
    engine
        .tree()
        .ip()
        .apply_object_deltas(&[ObjectDelta::Remove { id: ObjectId(0) }])
        .unwrap();
    assert_eq!(service.version(id).unwrap(), 0, "service counters bypassed");

    let after = service.execute(id, &req).unwrap();
    assert_eq!(
        service.stats().total_cache_hits(),
        1,
        "the pre-mutation entry must not hit"
    );
    let gone = ObjectId(0);
    assert!(
        after.objects().unwrap().iter().all(|&(o, _)| o != gone),
        "answer reflects the out-of-band removal: {after:?}"
    );
    let reference = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    let live: Vec<(ObjectId, IndoorPoint)> = objects
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &p)| (ObjectId(i as u32), p))
        .collect();
    reference.attach_objects_with_ids(&live);
    assert_eq!(after, QueryResponse::Knn(reference.knn(&q, 3)));
}

/// Service-level delta validation is atomic and typed.
#[test]
fn invalid_delta_batch_is_rejected_atomically() {
    let venue = Arc::new(random_venue(91));
    let objects = workload::place_objects(&venue, 6, 1);
    let service = IndoorService::new();
    let id = service
        .add_venue(
            venue.clone(),
            ShardConfig {
                threads: 1,
                objects: objects.clone(),
                ..ShardConfig::default()
            },
        )
        .unwrap();
    let q = workload::query_points(&venue, 1, 2)[0];
    let req = QueryRequest::Knn { q, k: 3 };
    let before = service.execute(id, &req).unwrap();

    let bad = [
        ObjectDelta::Remove { id: ObjectId(0) },
        ObjectDelta::Remove { id: ObjectId(77) },
    ];
    assert_eq!(
        service.update_objects(id, &bad),
        Err(ServiceError::Delta(id, DeltaError::UnknownId(ObjectId(77))))
    );
    assert_eq!(service.version(id).unwrap(), 0, "no bump on rejection");
    assert_eq!(
        service.execute(id, &req).unwrap(),
        before,
        "rejected batch leaves the object set untouched"
    );
    assert_eq!(
        service.update_objects(VenueId(9), &bad),
        Err(ServiceError::UnknownVenue(VenueId(9)))
    );
}

/// Keyword churn through the service: labelled updates maintain the
/// inverted lists incrementally and bump the version.
#[test]
fn keyword_updates_flow_through_service() {
    let venue = Arc::new(random_venue(95));
    let objects = workload::place_objects(&venue, 9, 1);
    let labelled = workload::cycling_labels(&objects, "cafe");
    let service = IndoorService::new();
    let id = service
        .add_venue(
            venue.clone(),
            ShardConfig {
                threads: 1,
                objects: objects.clone(),
                keywords: labelled.clone(),
                ..ShardConfig::default()
            },
        )
        .unwrap();

    let q = workload::query_points(&venue, 1, 3)[0];
    let req = QueryRequest::KnnKeyword {
        q,
        k: 3,
        keyword: "cafe".into(),
    };
    service.execute(id, &req).unwrap();

    // Insert a new cafe right at the query point: it must become a hit.
    let new_pos = q;
    let report = service
        .update_keyword_objects(
            id,
            &[ObjectUpdate {
                delta: ObjectDelta::Insert {
                    id: ObjectId(50),
                    at: new_pos,
                },
                labels: vec!["cafe".into()],
            }],
        )
        .unwrap();
    assert_eq!(report.inserts, 1);
    assert_eq!(service.version(id).unwrap(), 1);

    let got = service.execute(id, &req).unwrap();
    let ids: Vec<ObjectId> = got.objects().unwrap().iter().map(|&(o, _)| o).collect();
    assert!(
        ids.contains(&ObjectId(50)),
        "freshly inserted keyword object must surface: {ids:?}"
    );
}
