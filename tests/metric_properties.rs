//! The indoor shortest-distance function returned by the indexes must be
//! a proper metric (up to floating-point tolerance): non-negative, zero on
//! identity, symmetric (the D2D graph is undirected), and satisfying the
//! triangle inequality. Violations of any of these would indicate a
//! corrupted matrix or a broken ascent, independently of the Dijkstra
//! oracle checks in the per-crate suites.

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{random_venue, workload};
use std::sync::Arc;

fn build(seed: u64) -> (Arc<Venue>, VipTree) {
    let venue = Arc::new(random_venue(seed));
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    (venue, tree)
}

#[test]
fn non_negative_and_zero_on_identity() {
    for seed in [2u64, 222, 22222] {
        let (venue, tree) = build(seed);
        for p in workload::query_points(&venue, 30, seed) {
            let d = tree.shortest_distance_points(&p, &p).unwrap();
            assert!(d.abs() < 1e-12, "d(p,p) = {d}");
        }
        for (s, t) in workload::query_pairs(&venue, 30, seed ^ 1) {
            if let Some(d) = tree.shortest_distance_points(&s, &t) {
                assert!(d >= 0.0, "negative distance {d}");
                assert!(d.is_finite());
            }
        }
    }
}

#[test]
fn symmetric() {
    for seed in [5u64, 555, 55555] {
        let (venue, tree) = build(seed);
        for (s, t) in workload::query_pairs(&venue, 40, seed) {
            let ab = tree.shortest_distance_points(&s, &t);
            let ba = tree.shortest_distance_points(&t, &s);
            match (ab, ba) {
                (Some(x), Some(y)) => {
                    assert!((x - y).abs() < 1e-6 * x.max(1.0), "asymmetry: {x} vs {y}")
                }
                (None, None) => {}
                _ => panic!("asymmetric reachability"),
            }
        }
    }
}

#[test]
fn triangle_inequality() {
    for seed in [7u64, 777, 77777] {
        let (venue, tree) = build(seed);
        let pts = workload::query_points(&venue, 12, seed);
        for a in &pts {
            for b in &pts {
                for c in &pts {
                    let (ab, bc, ac) = (
                        tree.shortest_distance_points(a, b),
                        tree.shortest_distance_points(b, c),
                        tree.shortest_distance_points(a, c),
                    );
                    if let (Some(ab), Some(bc), Some(ac)) = (ab, bc, ac) {
                        assert!(
                            ac <= ab + bc + 1e-6 * ac.max(1.0),
                            "triangle violation: d(a,c)={ac} > d(a,b)={ab} + d(b,c)={bc}"
                        );
                    }
                }
            }
        }
    }
}

/// Shortest-path door counts are consistent with the distance: a path
/// crossing w doors has length at least the largest single segment and at
/// most the sum of all edge weights along it (already checked by
/// validate); here we additionally pin the w = 0 case to same-partition
/// routes.
#[test]
fn zero_door_paths_are_same_partition() {
    for seed in [9u64, 909] {
        let (venue, tree) = build(seed);
        for (s, t) in workload::query_pairs(&venue, 60, seed) {
            if let Some(p) = tree.shortest_path_points(&s, &t) {
                if p.doors.is_empty() {
                    assert_eq!(
                        s.partition, t.partition,
                        "cross-partition route without doors"
                    );
                }
                let _ = p.validate(&venue).unwrap();
            }
        }
    }
}
