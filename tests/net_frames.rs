//! Adversarial property tests for the wire-frame decoder
//! (`indoor_model::frames`): whatever bytes arrive — clean streams split
//! at arbitrary packet boundaries, truncated frames, bit-flipped
//! payloads or headers, oversized length prefixes — the decoder must
//! never panic, never fabricate a frame, and surface exactly one typed
//! error after which it stays poisoned so the server can close the
//! connection cleanly (the contract `crates/net` relies on: framing
//! errors end connections; service errors ride inside frames).

use indoor_spatial::model::frames::{
    Frame, FrameDecoder, WireError, FRAME_HEADER_LEN, MAX_FRAME_LEN,
};
use indoor_spatial::synth::{random_venue, workload};
use proptest::prelude::*;

/// A representative frame set: scalar control frames, id-carrying
/// requests with real query payloads, error replies, and replication
/// stream frames (the id-less kind). Built once — venue synthesis is
/// the expensive part and every proptest case wants the same pool.
fn sample_frames() -> &'static [Frame] {
    static POOL: std::sync::OnceLock<Vec<Frame>> = std::sync::OnceLock::new();
    POOL.get_or_init(build_frames)
}

fn build_frames() -> Vec<Frame> {
    let venue = random_venue(90);
    let reqs = workload::mixed_requests(&venue, 1, 3, 45.0, "atm", 90);
    let mut frames = vec![
        Frame::Ping { id: 7 },
        Frame::Stats { id: 8 },
        Frame::Replicate {
            venue: 3,
            from_lsn: 12,
        },
        Frame::ReplHead {
            venue: 3,
            version: 41,
        },
        Frame::Wal {
            venue: 3,
            lsn: 13,
            record: vec![0xAB; 57],
        },
        Frame::ReplEnd {
            venue: 3,
            err: Some(WireError::NotDurable),
        },
        Frame::Error {
            id: 9,
            err: WireError::Overloaded {
                venue: 1,
                in_flight: 8,
                limit: 8,
            },
        },
        Frame::MutationOk { id: 10, version: 6 },
    ];
    for (i, req) in reqs.into_iter().enumerate() {
        frames.push(Frame::Query {
            id: 100 + i as u64,
            venue: 0,
            req,
        });
    }
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A clean stream decodes to the same frames regardless of how the
    /// bytes are split across `extend` calls (TCP owes no respect to
    /// frame boundaries).
    #[test]
    fn arbitrary_packetisation_roundtrips(
        picks in proptest::collection::vec(0usize..13, 1..8),
        chunk in 1usize..97,
    ) {
        let pool = sample_frames();
        let sent: Vec<&Frame> = picks.iter().map(|i| &pool[i % pool.len()]).collect();
        let bytes: Vec<u8> = sent.iter().flat_map(|f| f.encode()).collect();

        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for part in bytes.chunks(chunk) {
            dec.extend(part);
            while let Some(f) = dec.next().expect("clean stream decodes") {
                got.push(f);
            }
        }
        prop_assert_eq!(got.len(), sent.len());
        for (g, s) in got.iter().zip(&sent) {
            prop_assert_eq!(g, *s);
        }
        prop_assert_eq!(dec.pending(), 0);
    }

    /// A truncated frame is *incomplete*, not an error: the decoder
    /// reports nothing until the rest arrives, then yields the frame.
    #[test]
    fn truncation_is_silence_not_error(pick in 0usize..13, cut_seed in 0u64..u64::MAX) {
        let pool = sample_frames();
        let frame = &pool[pick % pool.len()];
        let bytes = frame.encode();
        // Cut strictly inside the frame (1 ..= len-1).
        let cut = 1 + (cut_seed as usize) % (bytes.len() - 1);

        let mut dec = FrameDecoder::new();
        dec.extend(&bytes[..cut]);
        prop_assert_eq!(dec.next().expect("prefix is not an error"), None);
        prop_assert_eq!(dec.next().expect("still not an error"), None);
        dec.extend(&bytes[cut..]);
        prop_assert_eq!(dec.next().expect("completed frame decodes").as_ref(), Some(frame));
        prop_assert_eq!(dec.next().expect("stream drained"), None);
    }

    /// Flipping any payload byte trips the CRC: a typed error, never a
    /// panic, never a phantom frame — and the poison is permanent, so a
    /// valid frame arriving afterwards is *not* resurrected.
    #[test]
    fn payload_corruption_poisons_permanently(
        pick in 0usize..13,
        at_seed in 0u64..u64::MAX,
        flip in 1u8..255,
    ) {
        let pool = sample_frames();
        let frame = &pool[pick % pool.len()];
        let mut bytes = frame.encode();
        // Corrupt past the length word: CRC bytes or payload bytes.
        let lo = 4;
        let at = lo + (at_seed as usize) % (bytes.len() - lo);
        bytes[at] ^= flip;

        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        prop_assert!(dec.next().is_err(), "corrupt frame must fail CRC");
        dec.extend(&frame.encode());
        prop_assert!(dec.next().is_err(), "poison outlives fresh valid bytes");
    }

    /// A length prefix above the hard ceiling is rejected from the
    /// header alone — before any payload arrives, so a hostile peer
    /// cannot make the server allocate 4 GiB.
    #[test]
    fn oversized_length_is_rejected_from_the_header(excess in 1u32..1000) {
        let len = MAX_FRAME_LEN + excess;
        let mut bytes = Vec::with_capacity(FRAME_HEADER_LEN);
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());

        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        prop_assert!(dec.next().is_err(), "oversized header must be refused");
        prop_assert!(dec.next().is_err(), "and the refusal is sticky");
    }

    /// Garbage that happens to parse as a *short* frame still cannot
    /// produce output: a random byte soup either stays silent (looks
    /// like a long incomplete frame) or errors — it never yields a
    /// frame. (A fabricated frame needs a CRC32 collision.)
    #[test]
    fn random_bytes_never_fabricate_a_frame(
        noise in proptest::collection::vec(0u8..255, FRAME_HEADER_LEN..200),
    ) {
        let mut dec = FrameDecoder::new();
        dec.extend(&noise);
        for _ in 0..4 {
            match dec.next() {
                Ok(None) => {}
                Ok(Some(f)) => prop_assert!(false, "decoded a frame from noise: {f:?}"),
                Err(_) => break,
            }
        }
    }
}
