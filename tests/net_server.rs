//! End-to-end contract for the network front-end (`crates/net`) over a
//! loopback listener:
//!
//! - **Byte-identity**: every query kind answered over the wire equals
//!   the in-process [`IndoorService::execute`] answer exactly — framing
//!   round-trips are lossless, including through the pipelined batch
//!   path.
//! - **Typed overload**: flooding a shard past its admission capacity
//!   yields `Overloaded` *replies*, never dropped connections — every
//!   request resolves and the connection stays usable afterwards.
//! - **Replication**: a volatile follower subscribing to a durable
//!   leader's WAL stream is byte-identical on all five query kinds
//!   after catch-up, its reported lag reaches 0, live tailing tracks
//!   new writes, a mid-stream resume from an arbitrary LSN fetches
//!   exactly the missing suffix — and killing the leader leaves the
//!   replica serving its last-synced state.

use indoor_net::{follower, NetClient, NetError, NetServer};
use indoor_spatial::prelude::*;
use indoor_spatial::synth::{random_venue, workload};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> DirGuard {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vip-net-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    DirGuard(dir)
}

struct DirGuard(PathBuf);

impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Venue + labelled objects + a mixed request set covering all five
/// query kinds.
fn fixture(seed: u64) -> (Arc<Venue>, ShardConfig, Vec<QueryRequest>) {
    let venue = Arc::new(random_venue(seed));
    let objects = workload::place_objects(&venue, 24, seed);
    let keywords = workload::cycling_labels(&objects, "atm");
    let reqs = workload::mixed_requests(&venue, 6, 4, 60.0, "atm", seed);
    let config = ShardConfig {
        threads: 1,
        objects,
        keywords,
        ..ShardConfig::default()
    };
    (venue, config, reqs)
}

#[test]
fn wire_answers_are_byte_identical_to_direct_execution() {
    let (venue, config, reqs) = fixture(81);
    let service = Arc::new(IndoorService::new());
    let id = service.add_venue(venue, config).unwrap();
    let server = NetServer::bind(service.clone(), "127.0.0.1:0").unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // Sequential path: one request per round trip.
    for req in &reqs {
        let direct = service.execute(id, req).unwrap();
        let wired = client.query(id.index() as u32, req).unwrap();
        assert_eq!(wired, direct, "sequential wire answer diverged: {req:?}");
    }

    // Batch path: the whole mixed set in one frame, answered by one
    // `execute_batch` server-side.
    let batch: Vec<(u32, QueryRequest)> = reqs
        .iter()
        .map(|r| (id.index() as u32, r.clone()))
        .collect();
    let answers = client.query_batch(&batch).unwrap();
    assert_eq!(answers.len(), reqs.len());
    for (req, ans) in reqs.iter().zip(answers) {
        let direct = service.execute(id, req).unwrap();
        assert_eq!(
            ans.unwrap(),
            direct,
            "batched wire answer diverged: {req:?}"
        );
    }

    // Pipelined path: fire everything, then drain; replies must match
    // by id, not arrival order assumptions.
    let mut expect = std::collections::HashMap::new();
    for req in &reqs {
        let rid = client.send_query(id.index() as u32, req.clone()).unwrap();
        expect.insert(rid, service.execute(id, req).unwrap());
    }
    for _ in 0..reqs.len() {
        let (rid, ans) = client.recv_answer().unwrap();
        let direct = expect.remove(&rid).expect("known request id");
        assert_eq!(ans.unwrap(), direct, "pipelined wire answer diverged");
    }
    assert!(expect.is_empty());
}

#[test]
fn unknown_venue_and_malformed_admin_come_back_typed() {
    let service = Arc::new(IndoorService::new());
    let server = NetServer::bind(service, "127.0.0.1:0").unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let venue = random_venue(83);
    let req = &workload::mixed_requests(&venue, 1, 2, 30.0, "atm", 83)[0];
    match client.query(999, req) {
        Err(NetError::Server(e)) => assert!(
            !e.is_retryable(),
            "unknown venue must not be retried: {e:?}"
        ),
        other => panic!("want typed UnknownVenue, got {other:?}"),
    }
    // The connection survives the error reply.
    client.ping().unwrap();
}

/// Flood a capacity-2 shard from four pipelined connections: the gate
/// must shed (typed `Overloaded` replies), every request must resolve,
/// and each connection must stay open through the storm. Whether the
/// gate actually trips is a thread-timing race, so the shed > 0 claim
/// gets several independently seeded rounds — the accounting invariants
/// must hold on all of them.
#[test]
fn flood_past_capacity_sheds_typed_errors_without_losing_connections() {
    let mut shed_seen = false;
    for seed in 84..89 {
        let (venue, mut config, reqs) = fixture(seed);
        config.admission = AdmissionConfig {
            max_in_flight: 1,
            policy: OverloadPolicy::Shed,
        };
        let service = Arc::new(IndoorService::new());
        let id = service.add_venue(venue, config).unwrap();
        let server = NetServer::bind(service.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        // Heavy enough that a coalesced batch outlives a scheduler
        // quantum even on one release-mode core — otherwise handler
        // threads never overlap inside the admission window and the
        // gate has nothing to refuse.
        let per_conn = 400usize;
        let conns = 8u64;
        let (answered, shed) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..conns)
                .map(|_| {
                    let reqs = &reqs;
                    scope.spawn(move || {
                        let mut client = NetClient::connect(addr).unwrap();
                        let (mut ok, mut bounced) = (0u64, 0u64);
                        for i in 0..per_conn {
                            client
                                .send_query(id.index() as u32, reqs[i % reqs.len()].clone())
                                .unwrap();
                        }
                        for _ in 0..per_conn {
                            match client.recv_answer().unwrap().1 {
                                Ok(_) => ok += 1,
                                Err(e) => {
                                    assert!(e.is_retryable(), "only admission errors: {e:?}");
                                    bounced += 1;
                                }
                            }
                        }
                        // The connection survived the flood.
                        client.ping().unwrap();
                        (ok, bounced)
                    })
                })
                .collect();
            handles.into_iter().fold((0, 0), |acc, h| {
                let (ok, bounced) = h.join().unwrap();
                (acc.0 + ok, acc.1 + bounced)
            })
        });

        assert_eq!(
            answered + shed,
            conns * per_conn as u64,
            "every flooded request must resolve (answer or typed shed)"
        );
        // The gate counts one *event* per rejected batch share; the
        // client sees one typed reply per slot in that share.
        let gate_events = service.stats().shed;
        assert!(
            gate_events <= shed,
            "gate events ({gate_events}) cannot exceed bounced requests ({shed})"
        );
        assert_eq!(
            gate_events > 0,
            shed > 0,
            "server and client must agree on whether pushback happened"
        );
        if shed > 0 {
            shed_seen = true;
            break;
        }
    }
    assert!(
        shed_seen,
        "gate never pushed back across five seeded flood rounds"
    );
}

/// Mutate the leader through the wire while a follower tails: kNN /
/// range / keyword / distance / path answers must match on both sides
/// once lag hits 0, and continue matching after the leader dies.
#[test]
fn follower_catches_up_tails_live_and_survives_leader_death() {
    let guard = scratch_dir("repl");
    let leader = Arc::new(IndoorService::open(&guard.0).unwrap());
    let (venue, config, reqs) = fixture(91);
    let id = leader.add_venue(venue.clone(), config).unwrap();
    let objects = workload::place_objects(&venue, 24, 91);

    // Advance the WAL before any follower exists: attach + label churn.
    leader
        .update_keyword_objects(
            id,
            &[ObjectUpdate {
                delta: ObjectDelta::Insert {
                    id: ObjectId(100),
                    at: objects[0],
                },
                labels: vec!["cafe".into()],
            }],
        )
        .unwrap();
    let mut server = NetServer::bind(leader.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Bootstrap from LSN 0: Create record first, then the churn suffix.
    let replica = IndoorService::new();
    let mut stream = follower::subscribe(addr, id, 0).unwrap();
    let report = stream.catch_up(&replica).unwrap();
    assert_eq!(report.version, leader.version(id).unwrap());
    assert!(report.applied >= 2, "Create + at least one churn record");
    assert_eq!(
        replica.venue_stats(id).unwrap().replication_lag,
        0,
        "lag must reach 0 after catch-up"
    );
    for req in &reqs {
        assert_eq!(
            replica.execute(id, req).unwrap(),
            leader.execute(id, req).unwrap(),
            "post-catch-up divergence: {req:?}"
        );
    }

    // Tail live while the leader absorbs more churn through the wire.
    let stop = Arc::new(AtomicBool::new(false));
    let tail = {
        let replica = &replica;
        let stop = stop.clone();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || stream.tail(replica, &stop));

            let mut client = NetClient::connect(addr).unwrap();
            let wire_id = id.index() as u32;
            for (i, obj) in objects.iter().take(6).enumerate() {
                client
                    .update_keywords(
                        wire_id,
                        &[ObjectUpdate {
                            delta: ObjectDelta::Insert {
                                id: ObjectId(101 + i as u32),
                                at: *obj,
                            },
                            labels: vec!["exit".into()],
                        }],
                    )
                    .unwrap();
            }
            let target = leader.version(id).unwrap();
            let deadline = Instant::now() + Duration::from_secs(10);
            while replica.version(id).unwrap() < target {
                assert!(Instant::now() < deadline, "tail never caught up");
                std::thread::sleep(Duration::from_millis(5));
            }

            // Kill the leader: the tail must come back cleanly, not hang
            // or report a transport panic.
            server.stop();
            handle.join().unwrap().unwrap()
        })
    };
    assert_eq!(tail.version, leader.version(id).unwrap());
    assert_eq!(replica.venue_stats(id).unwrap().replication_lag, 0);

    // The same facts through the telemetry surface: the durable leader
    // recorded its WAL append latency, and the caught-up replica (whose
    // shard was created by WAL replay, so wired by the replication
    // path, not `add_venue`) exports a zero replication-lag gauge.
    let leader_snap = leader.metrics_snapshot();
    let wal = leader_snap
        .series
        .iter()
        .find(|s| s.name == "indoor_wal_append_us")
        .expect("durable leader exports WAL append histogram");
    let indoor_model::metrics::MetricValue::Histogram { count, max, .. } = wal.value else {
        panic!("indoor_wal_append_us must be a histogram");
    };
    assert!(
        count >= 7,
        "Create + 1 pre-follower + 6 tailed appends, got {count}"
    );
    assert!(max < 10_000_000, "append latency in µs, not ns: {max}");
    let replica_snap = replica.metrics_snapshot();
    let lag = replica_snap
        .series
        .iter()
        .find(|s| s.name == "indoor_replication_lag")
        .expect("replayed shard exports the lag gauge");
    assert_eq!(
        lag.value,
        indoor_model::metrics::MetricValue::Gauge(0.0),
        "caught-up replica must export zero lag"
    );

    // The orphaned replica still serves, byte-identical to the leader's
    // final state, on every query kind.
    for req in &reqs {
        assert_eq!(
            replica.execute(id, req).unwrap(),
            leader.execute(id, req).unwrap(),
            "post-mortem divergence: {req:?}"
        );
    }
    drop(stop);
}

/// A replica that already holds a prefix resumes from `version + 1` and
/// receives exactly the missing suffix — catch-up from an arbitrary
/// LSN, not a full re-bootstrap.
#[test]
fn follower_resumes_from_arbitrary_lsn_with_suffix_only() {
    let guard = scratch_dir("resume");
    let leader = Arc::new(IndoorService::open(&guard.0).unwrap());
    let (venue, config, reqs) = fixture(92);
    let id = leader.add_venue(venue.clone(), config).unwrap();
    let objects = workload::place_objects(&venue, 24, 92);

    let server = NetServer::bind(leader.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // First session: bootstrap, then disconnect.
    let replica = IndoorService::new();
    follower::subscribe(addr, id, 0)
        .unwrap()
        .catch_up(&replica)
        .unwrap();
    let parted_at = replica.version(id).unwrap();

    // Leader moves on while the follower is away.
    for (i, obj) in objects.iter().take(5).enumerate() {
        leader
            .update_objects(
                id,
                &[ObjectDelta::Insert {
                    id: ObjectId(200 + i as u32),
                    at: *obj,
                }],
            )
            .unwrap();
    }

    // Second session: resume from the next LSN the replica needs.
    let mut stream = follower::subscribe(addr, id, parted_at + 1).unwrap();
    let report = stream.catch_up(&replica).unwrap();
    assert_eq!(
        report.applied, 5,
        "resume must ship exactly the missed suffix"
    );
    assert_eq!(report.version, leader.version(id).unwrap());
    assert_eq!(replica.venue_stats(id).unwrap().replication_lag, 0);
    for req in &reqs {
        assert_eq!(
            replica.execute(id, req).unwrap(),
            leader.execute(id, req).unwrap(),
            "post-resume divergence: {req:?}"
        );
    }
}

/// Replication refusals are typed: an unknown venue and a volatile
/// (WAL-less) leader both answer with `ReplEnd` carrying the reason,
/// not a dropped connection.
#[test]
fn replication_refusals_are_typed() {
    let volatile = Arc::new(IndoorService::new());
    let (venue, config, _) = fixture(93);
    let id = volatile.add_venue(venue, config).unwrap();
    let server = NetServer::bind(volatile, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    match follower::subscribe(addr, VenueId::from(999u32), 0) {
        Err(NetError::Server(_)) => {}
        other => panic!("unknown venue must refuse typed, got {other:?}"),
    }
    match follower::subscribe(addr, id, 0) {
        Err(NetError::Server(e)) => {
            assert!(
                format!("{e:?}").contains("NotDurable"),
                "volatile leader must refuse as NotDurable, got {e:?}"
            );
        }
        other => panic!("volatile leader must refuse typed, got {other:?}"),
    }
}

/// Metrics smoke (the CI gate): the exposition page fetched over a live
/// server round-trips through the encoder lint clean, and carries both
/// the registry's venue-labelled histograms and the direct-append
/// service gauges — after real queries have flowed, so the latency
/// histograms are non-empty.
#[test]
fn metrics_page_fetches_over_the_wire_and_lints_clean() {
    indoor_spatial::vip::telemetry::set_sampling(true);
    let (venue, config, reqs) = fixture(97);
    let service = Arc::new(IndoorService::new());
    let id = service.add_venue(venue, config).unwrap();
    let server = NetServer::bind(service, "127.0.0.1:0").unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for req in &reqs {
        client.query(id.index() as u32, req).unwrap();
    }
    let page = client.metrics().unwrap();
    let errors = indoor_spatial::model::metrics::lint_text(&page);
    assert!(errors.is_empty(), "{errors:?}\n{page}");
    for needle in [
        "# TYPE indoor_query_latency_us histogram",
        "indoor_query_latency_us_count{kind=\"knn\",venue=\"0\"}",
        "indoor_traced_queries_total{venue=\"0\"}",
        "indoor_venues 1",
        "indoor_leaf_grid_builds_total{venue=\"0\"}",
    ] {
        assert!(page.contains(needle), "missing {needle} in page:\n{page}");
    }
    // The latency histograms really recorded: total count over kinds > 0.
    let counted: u64 = page
        .lines()
        .filter(|l| l.starts_with("indoor_query_latency_us_count"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    assert!(counted > 0, "no query latencies recorded:\n{page}");
    // Wire-level shard stats carry the folded object-index anatomy.
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards.len(), 1);
    assert!(stats.shards[0].live_objects > 0, "{:?}", stats.shards[0]);
    assert!(
        stats.shards[0].leaf_grid_builds > 0,
        "{:?}",
        stats.shards[0]
    );
}
