//! Delta-vs-rebuild equivalence: any interleaving of insert/remove/move
//! deltas followed by queries is **byte-identical** to a from-scratch
//! index built over the surviving live set — across the IP-tree, the
//! VIP-tree and the keyword index, on two venue presets — and delta
//! application is provably incremental (the `leaf_builds` recompute
//! counter never moves under deltas).

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, workload};
use indoor_spatial::vip::KeywordObjects;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, OnceLock};

const LABELS: [&str; 3] = ["cafe", "atm", "exit"];

struct Preset {
    name: &'static str,
    venue: Arc<Venue>,
    /// Dedicated to this suite: delta streams are applied to these trees.
    ip: IpTree,
    vip: VipTree,
    /// Rebuild targets for the from-scratch reference attach (per index
    /// kind: IP and VIP ascents produce approximately — not bitwise —
    /// equal distances, so byte-equality is asserted within each kind).
    reference: VipTree,
    reference_ip: IpTree,
    /// Candidate object/query positions.
    pool: Vec<IndoorPoint>,
}

fn presets() -> &'static Vec<Preset> {
    static CELL: OnceLock<Vec<Preset>> = OnceLock::new();
    CELL.get_or_init(|| {
        [
            ("MC", presets::melbourne_central().build()),
            ("Men", presets::menzies().build()),
        ]
        .into_iter()
        .map(|(name, venue)| {
            let venue = Arc::new(venue);
            let cfg = VipTreeConfig::default();
            Preset {
                name,
                ip: IpTree::build(venue.clone(), &cfg).unwrap(),
                vip: VipTree::build(venue.clone(), &cfg).unwrap(),
                reference: VipTree::build(venue.clone(), &cfg).unwrap(),
                reference_ip: IpTree::build(venue.clone(), &cfg).unwrap(),
                pool: workload::place_objects(&venue, 64, 0xDE17A),
                venue,
            }
        })
        .collect()
    })
}

/// The model the index must agree with: live slots and their labels.
#[derive(Default)]
struct Model {
    slots: Vec<Option<(IndoorPoint, Vec<String>)>>,
}

impl Model {
    fn live_ids(&self) -> Vec<ObjectId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| ObjectId(i as u32))
            .collect()
    }

    fn pairs(&self) -> Vec<(ObjectId, IndoorPoint)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|(p, _)| (ObjectId(i as u32), *p)))
            .collect()
    }

    fn triples(&self) -> Vec<(ObjectId, IndoorPoint, Vec<String>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|(p, l)| (ObjectId(i as u32), *p, l.clone())))
            .collect()
    }

    fn apply(&mut self, u: &ObjectUpdate) {
        let id = u.delta.id().index();
        if id >= self.slots.len() {
            self.slots.resize(id + 1, None);
        }
        match &u.delta {
            ObjectDelta::Insert { at, .. } => self.slots[id] = Some((*at, u.labels.clone())),
            ObjectDelta::Remove { .. } => self.slots[id] = None,
            ObjectDelta::Move { to, .. } => {
                let labels = self.slots[id].as_ref().unwrap().1.clone();
                self.slots[id] = Some((*to, labels));
            }
        }
    }
}

/// A random but always-valid labelled delta batch against `model`.
fn random_batch(model: &Model, pool: &[IndoorPoint], rng: &mut StdRng) -> Vec<ObjectUpdate> {
    let n_ops = rng.gen_range(1..7);
    let mut shadow: Vec<Option<bool>> = model.slots.iter().map(|s| Some(s.is_some())).collect();
    let mut batch = Vec::new();
    for _ in 0..n_ops {
        let live: Vec<u32> = shadow
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Some(true))
            .map(|(i, _)| i as u32)
            .collect();
        let op = rng.gen_range(0..3u32);
        let point = pool[rng.gen_range(0..pool.len())];
        let delta = if live.is_empty() || op == 0 {
            // Insert: fresh slot, or revive a dead one (stable-id reuse).
            let dead: Vec<u32> = shadow
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Some(false))
                .map(|(i, _)| i as u32)
                .collect();
            let id = if !dead.is_empty() && rng.gen_range(0..2u32) == 0 {
                dead[rng.gen_range(0..dead.len())]
            } else {
                shadow.len() as u32
            };
            if id as usize >= shadow.len() {
                shadow.resize(id as usize + 1, Some(false));
            }
            shadow[id as usize] = Some(true);
            ObjectDelta::Insert {
                id: ObjectId(id),
                at: point,
            }
        } else if op == 1 {
            let id = live[rng.gen_range(0..live.len())];
            shadow[id as usize] = Some(false);
            ObjectDelta::Remove { id: ObjectId(id) }
        } else {
            let id = live[rng.gen_range(0..live.len())];
            ObjectDelta::Move {
                id: ObjectId(id),
                to: point,
            }
        };
        let labels = vec![LABELS[rng.gen_range(0..LABELS.len())].to_string()];
        batch.push(ObjectUpdate { delta, labels });
    }
    batch
}

/// Every query kind over the delta-maintained indexes, byte-compared
/// against the from-scratch rebuild of the live set.
fn assert_equivalent(p: &Preset, model: &Model, kw: &KeywordObjects, seed: u64) {
    p.reference.attach_objects_with_ids(&model.pairs());
    p.reference_ip.attach_objects_with_ids(&model.pairs());
    let kw_ref = KeywordObjects::build_with_ids(&p.ip, &model.triples());
    for q in workload::query_points(&p.venue, 4, seed ^ 0x51) {
        for k in [1usize, 3, 8] {
            let want = p.reference.knn(&q, k);
            assert_eq!(p.vip.knn(&q, k), want, "{}: vip knn k={k}", p.name);
            let want_ip = p.reference_ip.knn(&q, k);
            assert_eq!(p.ip.knn(&q, k), want_ip, "{}: ip knn k={k}", p.name);
        }
        for radius in [40.0, 160.0] {
            let want = p.reference.range(&q, radius);
            assert_eq!(p.vip.range(&q, radius), want, "{}: vip range", p.name);
            let want_ip = p.reference_ip.range(&q, radius);
            assert_eq!(p.ip.range(&q, radius), want_ip, "{}: ip range", p.name);
        }
        for label in ["cafe", "atm", "exit", "missing"] {
            assert_eq!(
                kw.knn_keyword(&p.ip, &q, 3, label),
                kw_ref.knn_keyword(&p.ip, &q, 3, label),
                "{}: keyword '{label}'",
                p.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    #[test]
    fn delta_interleavings_match_rebuild(seed in 0u64..100_000) {
        for p in presets() {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
            let mut model = Model::default();

            // Seed state: a dense positional set, like a cold build.
            let n0 = rng.gen_range(4..14);
            let start: Vec<ObjectUpdate> = (0..n0)
                .map(|i| ObjectUpdate {
                    delta: ObjectDelta::Insert {
                        id: ObjectId(i as u32),
                        at: p.pool[rng.gen_range(0..p.pool.len())],
                    },
                    labels: vec![LABELS[i % LABELS.len()].to_string()],
                })
                .collect();
            let points: Vec<IndoorPoint> = start
                .iter()
                .map(|u| u.delta.position().unwrap())
                .collect();
            p.vip.attach_objects(&points);
            p.ip.attach_objects(&points);
            let labelled: Vec<(IndoorPoint, Vec<String>)> = start
                .iter()
                .map(|u| (u.delta.position().unwrap(), u.labels.clone()))
                .collect();
            let mut kw = KeywordObjects::build(&p.ip, &labelled);
            for u in &start {
                model.apply(u);
            }

            let builds_at_start = p
                .vip
                .ip_tree()
                .object_index()
                .unwrap()
                .index_stats()
                .leaf_builds;

            for _ in 0..3 {
                let batch = random_batch(&model, &p.pool, &mut rng);
                let deltas: Vec<ObjectDelta> = batch.iter().map(|u| u.delta).collect();
                p.vip.apply_object_deltas(&deltas).unwrap();
                p.ip.apply_object_deltas(&deltas).unwrap();
                kw.apply_delta(&p.ip, &batch).unwrap();
                for u in &batch {
                    model.apply(u);
                }
                assert_equivalent(p, &model, &kw, seed);
            }

            let stats = p.vip.ip_tree().object_index().unwrap().index_stats();
            prop_assert_eq!(
                stats.leaf_builds, builds_at_start,
                "{}: deltas must never recompute leaf tables", p.name
            );
            prop_assert_eq!(stats.live, model.live_ids().len());
        }
    }
}

/// The acceptance criterion in isolation: a delta that lands in one leaf
/// touches exactly that leaf and recomputes nothing. (Own tree — the
/// shared preset trees belong to the proptest above, which churns their
/// object sets.)
#[test]
fn single_leaf_delta_touches_one_leaf() {
    let venue = Arc::new(presets::melbourne_central().build());
    let vip = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    let objects = workload::place_objects(&venue, 16, 7);
    vip.attach_objects(&objects);
    let before = vip.ip_tree().object_index().unwrap().index_stats();
    assert!(before.leaf_builds > 1, "objects must span several leaves");

    // Move one object within its own partition: one leaf, in and out.
    let report = vip
        .apply_object_deltas(&[ObjectDelta::Move {
            id: ObjectId(5),
            to: objects[5],
        }])
        .unwrap();
    assert_eq!(report.touched_leaves, 1, "single-leaf delta");
    let after = vip.ip_tree().object_index().unwrap().index_stats();
    assert_eq!(
        after.leaf_builds, before.leaf_builds,
        "untouched leaves are not recomputed — no leaf is"
    );
    assert_eq!(
        after.leaf_touches,
        before.leaf_touches + 2,
        "remove + insert"
    );
}
