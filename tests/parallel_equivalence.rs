//! Parallel build determinism: `VipTree::build` / `IpTree::build` with
//! `threads = 1` and `threads = N` must produce **bit-identical** indexes —
//! every distance-matrix entry, next-hop, access-door list, and superior-
//! door set — and therefore identical query answers. This is the contract
//! that makes `VipTreeConfig::threads` safe to default to "all cores"
//! (DESIGN.md, "Parallel build determinism").

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, random_venue, workload};
use std::sync::Arc;

fn assert_trees_bit_identical(a: &IpTree, b: &IpTree, label: &str) {
    assert_eq!(a.num_nodes(), b.num_nodes(), "{label}: node count");
    for idx in 0..a.num_nodes() as u32 {
        let (na, nb) = (a.node(idx), b.node(idx));
        assert_eq!(na.parent, nb.parent, "{label}: node {idx} parent");
        assert_eq!(na.children, nb.children, "{label}: node {idx} children");
        assert_eq!(
            na.access_doors, nb.access_doors,
            "{label}: node {idx} access doors"
        );
        assert_eq!(na.doors, nb.doors, "{label}: node {idx} doors");
        assert_eq!(
            na.partitions, nb.partitions,
            "{label}: node {idx} partitions"
        );
        assert_eq!(na.matrix.rows, nb.matrix.rows, "{label}: node {idx} rows");
        assert_eq!(na.matrix.cols, nb.matrix.cols, "{label}: node {idx} cols");
        assert_eq!(
            na.matrix.next_hop, nb.matrix.next_hop,
            "{label}: node {idx} next hops"
        );
        assert_eq!(
            na.matrix.dist.len(),
            nb.matrix.dist.len(),
            "{label}: node {idx} matrix size"
        );
        for (i, (x, y)) in na.matrix.dist.iter().zip(nb.matrix.dist.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: node {idx} dist[{i}]: {x} vs {y}"
            );
        }
    }
    for p in 0..a.venue().num_partitions() as u32 {
        assert_eq!(
            a.superior_doors(PartitionId(p)),
            b.superior_doors(PartitionId(p)),
            "{label}: superior doors of partition {p}"
        );
    }
}

fn check_venue(venue: Arc<Venue>, label: &str) {
    let serial_cfg = VipTreeConfig::default().with_threads(1);
    let parallel_cfg = VipTreeConfig::default().with_threads(4);

    let ip_serial = IpTree::build(venue.clone(), &serial_cfg).unwrap();
    let ip_parallel = IpTree::build(venue.clone(), &parallel_cfg).unwrap();
    assert_trees_bit_identical(&ip_serial, &ip_parallel, label);

    let vip_serial = VipTree::build(venue.clone(), &serial_cfg).unwrap();
    let vip_parallel = VipTree::build(venue.clone(), &parallel_cfg).unwrap();
    assert_trees_bit_identical(vip_serial.ip_tree(), vip_parallel.ip_tree(), label);
    assert_eq!(
        vip_serial.size_bytes(),
        vip_parallel.size_bytes(),
        "{label}: table footprint"
    );

    // Same answers, bit for bit, across query kinds.
    for (s, t) in workload::query_pairs(&venue, 40, 0xD15) {
        let d1 = ip_serial.shortest_distance(&s, &t);
        let d4 = ip_parallel.shortest_distance(&s, &t);
        assert_eq!(
            d1.map(f64::to_bits),
            d4.map(f64::to_bits),
            "{label}: IP distance {s:?} -> {t:?}"
        );
        let v1 = vip_serial.shortest_distance(&s, &t);
        let v4 = vip_parallel.shortest_distance(&s, &t);
        assert_eq!(
            v1.map(f64::to_bits),
            v4.map(f64::to_bits),
            "{label}: VIP distance {s:?} -> {t:?}"
        );
        let p1 = vip_serial.shortest_path(&s, &t);
        let p4 = vip_parallel.shortest_path(&s, &t);
        assert_eq!(
            p1.as_ref().map(|p| &p.doors),
            p4.as_ref().map(|p| &p.doors),
            "{label}: VIP path {s:?} -> {t:?}"
        );
    }

    let objects = workload::place_objects(&venue, 25, 0xB0);
    let knn_serial = VipTree::build(venue.clone(), &serial_cfg).unwrap();
    let knn_parallel = VipTree::build(venue.clone(), &parallel_cfg).unwrap();
    knn_serial.attach_objects(&objects);
    knn_parallel.attach_objects(&objects);
    for q in workload::query_points(&venue, 10, 0x17) {
        let a = ObjectQueries::knn(&knn_serial, &q, 5);
        let b = ObjectQueries::knn(&knn_parallel, &q, 5);
        assert_eq!(a.len(), b.len(), "{label}: kNN size at {q:?}");
        for ((oa, da), (ob, db)) in a.iter().zip(&b) {
            assert_eq!(oa, ob, "{label}: kNN object at {q:?}");
            assert_eq!(da.to_bits(), db.to_bits(), "{label}: kNN distance at {q:?}");
        }
    }
}

#[test]
fn parallel_build_is_bit_identical_on_random_venues() {
    for seed in [11u64, 4242, 90210] {
        check_venue(
            Arc::new(random_venue(seed)),
            &format!("random venue {seed}"),
        );
    }
}

#[test]
fn parallel_build_is_bit_identical_on_calibrated_presets() {
    check_venue(
        Arc::new(presets::melbourne_central().build()),
        "Melbourne Central",
    );
    check_venue(
        Arc::new(presets::melbourne_central_2().build()),
        "Melbourne Central x2",
    );
}

#[test]
fn thread_count_does_not_leak_into_answers_vs_default() {
    // The auto (threads = 0) build must also match the explicit one.
    let venue = Arc::new(random_venue(7));
    let auto = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    let one = IpTree::build(venue.clone(), &VipTreeConfig::default().with_threads(1)).unwrap();
    assert_trees_bit_identical(&auto, &one, "auto vs one");
}
