//! Kill-and-recover equivalence for the durability subsystem.
//!
//! The contract under test: for **any** churn prefix, a snapshot plus
//! WAL-suffix replay yields a service whose kNN / range / keyword /
//! shortest-distance / shortest-path answers are byte-identical to a
//! service that never went down — enforced by proptest over arbitrary
//! delta interleavings with the snapshot taken at a random point — and a
//! torn final WAL record (a crash mid-append) is truncated with recovery
//! still succeeding on everything before it.

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, random_venue, workload};
use indoor_spatial::vip::{CrashMode, FaultAt, FaultKind, FaultStorage, Storage};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const LABELS: [&str; 3] = ["cafe", "atm", "exit"];

/// Fresh scratch directory per call (no tempfile crate in the offline
/// container): unique by pid + counter, removed by [`DirGuard`].
fn scratch_dir(tag: &str) -> DirGuard {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vip-persist-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    DirGuard(dir)
}

struct DirGuard(PathBuf);

impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Tracks which ids are live in one object set, to generate always-valid
/// batches (mirrors `tests/object_deltas.rs`).
#[derive(Default)]
struct LiveSet {
    live: Vec<bool>,
}

impl LiveSet {
    fn seeded(n: usize) -> LiveSet {
        LiveSet {
            live: vec![true; n],
        }
    }

    fn random_batch(&mut self, pool: &[IndoorPoint], rng: &mut StdRng) -> Vec<ObjectUpdate> {
        let n_ops = rng.gen_range(1..6);
        let mut batch = Vec::new();
        for _ in 0..n_ops {
            let live_ids: Vec<u32> = self
                .live
                .iter()
                .enumerate()
                .filter(|(_, l)| **l)
                .map(|(i, _)| i as u32)
                .collect();
            let op = rng.gen_range(0..3u32);
            let point = pool[rng.gen_range(0..pool.len())];
            let delta = if live_ids.is_empty() || op == 0 {
                let id = self.live.iter().position(|l| !l).unwrap_or_else(|| {
                    self.live.push(false);
                    self.live.len() - 1
                });
                self.live[id] = true;
                ObjectDelta::Insert {
                    id: ObjectId(id as u32),
                    at: point,
                }
            } else if op == 1 {
                let id = live_ids[rng.gen_range(0..live_ids.len())];
                self.live[id as usize] = false;
                ObjectDelta::Remove { id: ObjectId(id) }
            } else {
                let id = live_ids[rng.gen_range(0..live_ids.len())];
                ObjectDelta::Move {
                    id: ObjectId(id),
                    to: point,
                }
            };
            batch.push(ObjectUpdate {
                delta,
                labels: vec![LABELS[rng.gen_range(0..LABELS.len())].to_string()],
            });
        }
        batch
    }
}

struct Fixture {
    venue: Arc<Venue>,
    pool: Vec<IndoorPoint>,
    objects: Vec<IndoorPoint>,
    keywords: Vec<(IndoorPoint, Vec<String>)>,
}

impl Fixture {
    fn new(venue: Arc<Venue>, seed: u64) -> Fixture {
        let pool = workload::place_objects(&venue, 48, seed ^ 0xF1);
        let objects = workload::place_objects(&venue, 16, seed ^ 0xF2);
        let keywords = workload::cycling_labels(&objects, "cafe");
        Fixture {
            venue,
            pool,
            objects,
            keywords,
        }
    }

    fn config(&self) -> ShardConfig {
        ShardConfig {
            threads: 1,
            objects: self.objects.clone(),
            keywords: self.keywords.clone(),
            ..ShardConfig::default()
        }
    }
}

/// Every query kind, asserted byte-identical between two services.
fn assert_same_answers(
    recovered: &IndoorService,
    reference: &IndoorService,
    id: VenueId,
    f: &Fixture,
    seed: u64,
    ctx: &str,
) {
    let mut reqs: Vec<QueryRequest> = Vec::new();
    for q in workload::query_points(&f.venue, 4, seed ^ 0x77) {
        for k in [1usize, 3] {
            reqs.push(QueryRequest::Knn { q, k });
        }
        reqs.push(QueryRequest::Range { q, radius: 120.0 });
        for label in ["cafe", "atm", "missing"] {
            reqs.push(QueryRequest::KnnKeyword {
                q,
                k: 3,
                keyword: label.into(),
            });
        }
    }
    for (s, t) in workload::query_pairs(&f.venue, 3, seed ^ 0x78) {
        reqs.push(QueryRequest::ShortestDistance { s, t });
        reqs.push(QueryRequest::ShortestPath { s, t });
    }
    for req in &reqs {
        assert_eq!(
            recovered.execute(id, req).unwrap(),
            reference.execute(id, req).unwrap(),
            "{ctx}: diverged on {req:?}"
        );
    }
    assert_eq!(
        recovered.version(id).unwrap(),
        reference.version(id).unwrap(),
        "{ctx}: version counters diverged"
    );
    assert_eq!(
        recovered.epoch(id).unwrap(),
        reference.epoch(id).unwrap(),
        "{ctx}: epoch counters diverged"
    );
    // ObjectIndexStats sanity: the recovered live set matches, and the
    // rebuild left no tombstone debt.
    let rec = recovered.engine(id).unwrap();
    let refc = reference.engine(id).unwrap();
    let rec_stats = rec.tree().ip().object_index().unwrap().index_stats();
    let ref_stats = refc.tree().ip().object_index().unwrap().index_stats();
    assert_eq!(rec_stats.live, ref_stats.live, "{ctx}: live counts");
    assert!(rec_stats.slots >= rec_stats.live);
    let rec_kw = rec.keywords().unwrap().object_index().index_stats();
    let ref_kw = refc.keywords().unwrap().object_index().index_stats();
    assert_eq!(rec_kw.live, ref_kw.live, "{ctx}: keyword live counts");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn kill_and_recover_matches_uninterrupted_service(seed in 0u64..100_000) {
        let guard = scratch_dir("prop");
        let dir = &guard.0;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let f = Fixture::new(Arc::new(random_venue(seed % 97)), seed);

        // Durable service under test + volatile never-restarted reference,
        // fed identical churn.
        let durable = IndoorService::open(dir).expect("open empty dir");
        let reference = IndoorService::new();
        let id = durable.add_venue(f.venue.clone(), f.config()).unwrap();
        let ref_id = reference.add_venue(f.venue.clone(), f.config()).unwrap();
        prop_assert_eq!(id, ref_id);

        let mut objects = LiveSet::seeded(f.objects.len());
        let mut kw_objects = LiveSet::seeded(f.keywords.len());
        let rounds = rng.gen_range(2..6);
        let snapshot_at = rng.gen_range(0..rounds);
        for round in 0..rounds {
            if round == snapshot_at {
                let report = durable.save_snapshot(dir).expect("snapshot");
                prop_assert_eq!(report.venues, 1);
            }
            // Plain object churn...
            let deltas: Vec<ObjectDelta> = objects
                .random_batch(&f.pool, &mut rng)
                .into_iter()
                .map(|u| u.delta)
                .collect();
            durable.update_objects(id, &deltas).unwrap();
            reference.update_objects(id, &deltas).unwrap();
            // ...and labelled keyword churn, interleaved.
            let updates = kw_objects.random_batch(&f.pool, &mut rng);
            durable.update_keyword_objects(id, &updates).unwrap();
            reference.update_keyword_objects(id, &updates).unwrap();
            // Occasionally a wholesale replacement (epoch bump).
            if rng.gen_range(0..4u32) == 0 {
                let fresh = workload::place_objects(&f.venue, 12, seed ^ round as u64);
                durable.attach_objects(id, &fresh).unwrap();
                reference.attach_objects(id, &fresh).unwrap();
                objects = LiveSet::seeded(fresh.len());
            }
        }

        // Kill (drop) and recover.
        drop(durable);
        let (recovered, report) = IndoorService::open_with_report(dir).expect("recover");
        prop_assert!(report.venues == 1);
        assert_same_answers(&recovered, &reference, id, &f, seed, "recovered");

        // The recovered service keeps journaling: churn both again and
        // restart once more — counters stayed monotone, nothing aliases.
        let deltas: Vec<ObjectDelta> = objects
            .random_batch(&f.pool, &mut rng)
            .into_iter()
            .map(|u| u.delta)
            .collect();
        recovered.update_objects(id, &deltas).unwrap();
        reference.update_objects(id, &deltas).unwrap();
        drop(recovered);
        let recovered = IndoorService::open(dir).expect("second recover");
        assert_same_answers(&recovered, &reference, id, &f, seed, "recovered twice");
    }
}

/// A durability directory has exactly one live writer: a second `open`
/// fails loudly instead of interleaving WAL appends, and dropping the
/// owner releases the lock (it is advisory, so a crash cannot leave it
/// stale).
#[test]
fn second_open_of_locked_directory_fails() {
    let guard = scratch_dir("lock");
    let dir = &guard.0;
    let first = IndoorService::open(dir).unwrap();
    match IndoorService::open(dir) {
        Err(e) => assert!(
            e.to_string().contains("locked by another live service"),
            "unexpected error: {e}"
        ),
        Ok(_) => panic!("second open of a live durability directory must fail"),
    }
    drop(first);
    IndoorService::open(dir).expect("lock released on drop");
}

/// A torn final record — a crash mid-append — is truncated and recovery
/// succeeds with exactly the acknowledged prefix before it.
#[test]
fn torn_tail_is_truncated_and_recovery_succeeds() {
    let guard = scratch_dir("torn");
    let dir = &guard.0;
    let f = Fixture::new(Arc::new(presets::melbourne_central().build()), 11);

    let durable = IndoorService::open(dir).unwrap();
    let reference = IndoorService::new();
    let id = durable.add_venue(f.venue.clone(), f.config()).unwrap();
    reference.add_venue(f.venue.clone(), f.config()).unwrap();

    let batches: [Vec<ObjectDelta>; 3] = [
        vec![ObjectDelta::Move {
            id: ObjectId(0),
            to: f.pool[0],
        }],
        vec![
            ObjectDelta::Remove { id: ObjectId(1) },
            ObjectDelta::Insert {
                id: ObjectId(20),
                at: f.pool[1],
            },
        ],
        vec![ObjectDelta::Move {
            id: ObjectId(2),
            to: f.pool[2],
        }],
    ];
    for batch in &batches {
        durable.update_objects(id, batch).unwrap();
    }
    // The reference applies all but the final batch — the one about to be
    // torn off the log.
    reference.update_objects(id, &batches[0]).unwrap();
    reference.update_objects(id, &batches[1]).unwrap();
    drop(durable);

    // Tear the last record mid-frame: chop a few bytes off the log tail.
    let wal = dir.join("venue-0.wal");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

    let (recovered, report) = IndoorService::open_with_report(dir).expect("recover torn log");
    assert_eq!(report.truncated_tails, 1, "torn tail must be truncated");
    assert_eq!(report.venues, 1);
    assert_same_answers(&recovered, &reference, id, &f, 11, "torn tail");

    // The truncation is physical: reopening again finds a clean log.
    drop(recovered);
    let (_, report) = IndoorService::open_with_report(dir).unwrap();
    assert_eq!(report.truncated_tails, 0, "repair persisted");
}

/// A crash between creating a WAL file and writing its magic header (a
/// venue registration that was never acknowledged) must not brick the
/// service: the torn header is repaired like a torn tail.
#[test]
fn torn_wal_header_is_repaired_not_fatal() {
    let guard = scratch_dir("torn-header");
    let dir = &guard.0;
    let f = Fixture::new(Arc::new(random_venue(13)), 13);

    let durable = IndoorService::open(dir).unwrap();
    let id = durable.add_venue(f.venue.clone(), f.config()).unwrap();
    drop(durable);

    // Simulate the crash window of a second add_venue: the file exists
    // but holds fewer bytes than the 8-byte magic.
    std::fs::write(dir.join("venue-1.wal"), b"VIP").unwrap();

    let (recovered, report) = IndoorService::open_with_report(dir).expect("repairable header");
    assert_eq!(report.truncated_tails, 1);
    assert_eq!(recovered.venues(), vec![id], "torn venue never existed");
    // The burned slot is not reused.
    let id_b = recovered
        .add_venue(
            f.venue.clone(),
            ShardConfig {
                threads: 1,
                ..ShardConfig::default()
            },
        )
        .unwrap();
    assert_eq!(id_b.index(), 2);
}

/// Crash window between a snapshot's rename and its deletion of a
/// removed venue's WAL: the snapshot records the slot as empty while the
/// log (Deltas … Remove, Create already rotated away) still exists. The
/// leftover mutations are moot, not corruption.
#[test]
fn crash_between_snapshot_rename_and_wal_deletion_recovers() {
    let guard = scratch_dir("crash-window");
    let dir = &guard.0;
    let f = Fixture::new(Arc::new(random_venue(23)), 23);

    let durable = IndoorService::open(dir).unwrap();
    let id = durable.add_venue(f.venue.clone(), f.config()).unwrap();
    durable.save_snapshot(dir).unwrap(); // rotation drops the Create record
    durable
        .update_objects(
            id,
            &[ObjectDelta::Move {
                id: ObjectId(0),
                to: f.pool[0],
            }],
        )
        .unwrap();
    durable.remove_venue(id).unwrap();
    let wal = dir.join("venue-0.wal");
    let orphan_log = std::fs::read(&wal).unwrap();
    durable.save_snapshot(dir).unwrap(); // records slot empty, deletes log
    drop(durable);
    // Simulate the crash: the deletion "never happened".
    std::fs::write(&wal, &orphan_log).unwrap();

    let (recovered, report) = IndoorService::open_with_report(dir).expect("window recoverable");
    assert_eq!(report.venues, 0);
    assert!(recovered.venues().is_empty());
}

/// Snapshotting rotates the WAL (covered records dropped) and preserves
/// recovery exactly; removals survive restarts and ids are never reused.
#[test]
fn snapshot_rotates_wal_and_removal_survives_restart() {
    let guard = scratch_dir("rotate");
    let dir = &guard.0;
    let f = Fixture::new(Arc::new(random_venue(7)), 7);

    let durable = IndoorService::open(dir).unwrap();
    let id_a = durable.add_venue(f.venue.clone(), f.config()).unwrap();
    let id_b = durable
        .add_venue(
            f.venue.clone(),
            ShardConfig {
                threads: 1,
                ..ShardConfig::default()
            },
        )
        .unwrap();
    durable
        .update_objects(
            id_a,
            &[ObjectDelta::Move {
                id: ObjectId(0),
                to: f.pool[0],
            }],
        )
        .unwrap();
    durable.remove_venue(id_b).unwrap();

    // Rotation drops the records the snapshot covers: venue A's Create +
    // one delta; venue B's log is deleted outright (slot empty in the
    // snapshot).
    let report = durable.save_snapshot(dir).unwrap();
    assert_eq!(report.venues, 1);
    assert_eq!(report.wal_records_dropped, 2);
    assert!(
        !dir.join("venue-1.wal").exists(),
        "removed venue log deleted"
    );

    // Post-snapshot churn lands in the rotated log and replays on open.
    durable
        .update_objects(
            id_a,
            &[ObjectDelta::Move {
                id: ObjectId(1),
                to: f.pool[1],
            }],
        )
        .unwrap();
    assert_eq!(durable.version(id_a).unwrap(), 2);
    drop(durable);

    let recovered = IndoorService::open(dir).unwrap();
    assert_eq!(recovered.venues(), vec![id_a], "removal survived restart");
    assert_eq!(recovered.version(id_a).unwrap(), 2);
    assert_eq!(
        recovered.execute(id_a, &QueryRequest::Knn { q: f.pool[3], k: 2 }),
        Ok(recovered
            .engine(id_a)
            .unwrap()
            .execute(&QueryRequest::Knn { q: f.pool[3], k: 2 })),
        "recovered shard serves"
    );
    // Ids burned by the removed venue are not reused after restart.
    let id_c = recovered
        .add_venue(
            f.venue.clone(),
            ShardConfig {
                threads: 1,
                ..ShardConfig::default()
            },
        )
        .unwrap();
    assert_ne!(id_c, id_b);
    assert_eq!(id_c.index(), 2);
}

/// A snapshot written by a volatile service is a portable export: opening
/// it elsewhere yields an equivalent durable service.
#[test]
fn volatile_service_snapshot_exports_and_opens() {
    let guard = scratch_dir("export");
    let dir = &guard.0;
    let f = Fixture::new(Arc::new(random_venue(19)), 19);

    let volatile = IndoorService::new();
    let id = volatile.add_venue(f.venue.clone(), f.config()).unwrap();
    volatile
        .update_objects(
            id,
            &[ObjectDelta::Insert {
                id: ObjectId(30),
                at: f.pool[5],
            }],
        )
        .unwrap();
    let report = volatile.save_snapshot(dir).unwrap();
    assert_eq!(report.venues, 1);
    assert_eq!(report.wal_records_dropped, 0, "no WAL to rotate");

    let opened = IndoorService::open(dir).unwrap();
    assert_same_answers(&opened, &volatile, id, &f, 19, "exported snapshot");
    assert_eq!(opened.persist_root(), Some(dir.as_path()));
}

/// Shorthand: a durable service on an in-memory fault-injected disk.
fn open_faulted(
    storage: &FaultStorage,
    dir: &std::path::Path,
) -> Result<IndoorService, PersistError> {
    let shared: Arc<dyn Storage> = Arc::new(storage.clone());
    IndoorService::open_with_storage(dir, shared).map(|(s, _)| s)
}

fn move_delta(f: &Fixture, slot: usize) -> [ObjectDelta; 1] {
    [ObjectDelta::Move {
        id: ObjectId(0),
        to: f.pool[slot],
    }]
}

/// ENOSPC in the middle of WAL rotation: the snapshot file itself landed,
/// but the rotated log could not be written. The old log stays the source
/// of truth — the shard keeps accepting (and journalling) mutations, and
/// a restart recovers the full history.
#[test]
fn enospc_mid_rotation_keeps_old_wal_authoritative() {
    let dir = PathBuf::from("/enospc-rotation");
    let f = Fixture::new(Arc::new(random_venue(31)), 31);
    let storage = FaultStorage::new();

    let durable = open_faulted(&storage, &dir).unwrap();
    let id = durable.add_venue(f.venue.clone(), f.config()).unwrap();
    durable.update_objects(id, &move_delta(&f, 0)).unwrap();

    // The disk fills exactly when rotation writes the replacement log.
    storage.set_fault(
        FaultAt::PathContains("venue-0.wal.tmp".into()),
        FaultKind::Enospc { keep: 0 },
    );
    let err = durable.save_snapshot(&dir).unwrap_err();
    assert!(
        matches!(err, PersistError::Io { .. }),
        "typed I/O error: {err}"
    );
    assert!(!storage.crashed(), "ENOSPC is an error, not a crash");

    // Rotation failed on the safe side of the rename: the append handle
    // is still valid and the shard is NOT degraded.
    assert_eq!(durable.degraded(id), Ok(None));
    assert_eq!(durable.version(id), Ok(1));
    durable.update_objects(id, &move_delta(&f, 1)).unwrap();
    assert_eq!(durable.version(id), Ok(2));
    drop(durable);

    // Restart: whichever of {fresh snapshot + suffix, old log} recovery
    // stitches together, the history must be complete.
    let recovered = open_faulted(&storage, &dir).unwrap();
    let reference = IndoorService::new();
    let ref_id = reference.add_venue(f.venue.clone(), f.config()).unwrap();
    reference
        .update_objects(ref_id, &move_delta(&f, 0))
        .unwrap();
    reference
        .update_objects(ref_id, &move_delta(&f, 1))
        .unwrap();
    assert_same_answers(&recovered, &reference, id, &f, 31, "enospc rotation");
}

/// Double fault: recovery of an already-damaged log is itself interrupted.
/// The first open must fail with a typed error (never a panic or a
/// silently half-repaired service); a clean retry then succeeds.
#[test]
fn fault_during_recovery_of_torn_log_rejects_then_recovers() {
    let dir = PathBuf::from("/double-fault");
    let f = Fixture::new(Arc::new(random_venue(37)), 37);
    let storage = FaultStorage::new();

    let durable = open_faulted(&storage, &dir).unwrap();
    let id = durable.add_venue(f.venue.clone(), f.config()).unwrap();
    durable.update_objects(id, &move_delta(&f, 2)).unwrap();
    drop(durable);

    // Fault one: a torn append — a frame header promising more bytes
    // than the file holds.
    let wal = dir.join("venue-0.wal");
    let mut bytes = Storage::read(&storage, &wal).unwrap();
    bytes.extend_from_slice(&[0xFF; 12]);
    Storage::write(&storage, &wal, &bytes).unwrap();

    // Fault two: the disk fills when recovery truncates the torn tail.
    storage.set_fault(
        FaultAt::PathContains("venue-0.wal".into()),
        FaultKind::Enospc { keep: 0 },
    );
    let err = open_faulted(&storage, &dir).unwrap_err();
    assert!(
        matches!(err, PersistError::Io { .. }),
        "typed reject: {err}"
    );

    // The one-shot fault is consumed; the retry repairs and recovers.
    let recovered = open_faulted(&storage, &dir).unwrap();
    assert_eq!(recovered.version(id), Ok(1));
    let reference = IndoorService::new();
    let ref_id = reference.add_venue(f.venue.clone(), f.config()).unwrap();
    reference
        .update_objects(ref_id, &move_delta(&f, 2))
        .unwrap();
    assert_same_answers(&recovered, &reference, id, &f, 37, "double fault");
}

/// Power loss between the snapshot's rename and the parent-directory
/// fsync: the rename is not yet durable, so the machine comes back with
/// the PREVIOUS snapshot — a consistent old state, never a mix. (This is
/// the window the post-rename `sync_dir` closes; the test pins the
/// failure semantics when power dies inside it.)
#[test]
fn power_loss_between_snapshot_rename_and_dir_sync_restores_old_state() {
    let dir = PathBuf::from("/rename-window");
    let f = Fixture::new(Arc::new(random_venue(41)), 41);
    let storage = FaultStorage::new();

    let durable = open_faulted(&storage, &dir).unwrap();
    let id = durable.add_venue(f.venue.clone(), f.config()).unwrap();
    durable.update_objects(id, &move_delta(&f, 3)).unwrap();
    durable.save_snapshot(&dir).unwrap(); // snapshot #1: fully durable at v1
    durable.update_objects(id, &move_delta(&f, 4)).unwrap();

    // Snapshot #2's rename completes, then power dies before sync_dir.
    storage.set_fault(
        FaultAt::PathContains("snapshot.bin".into()),
        FaultKind::CrashAfter,
    );
    durable.save_snapshot(&dir).unwrap_err();
    assert!(storage.crashed());
    storage.crash(CrashMode::Power);
    drop(durable);

    // The volatile rename (and the unsynced v2 append) evaporated: the
    // machine is back on snapshot #1, exactly version 1.
    let recovered = open_faulted(&storage, &dir).unwrap();
    assert_eq!(recovered.version(id), Ok(1));
    let reference = IndoorService::new();
    let ref_id = reference.add_venue(f.venue.clone(), f.config()).unwrap();
    reference
        .update_objects(ref_id, &move_delta(&f, 3))
        .unwrap();
    assert_same_answers(&recovered, &reference, id, &f, 41, "rename window");
}

// ---------------------------------------------------------------------------
// SyncPolicy: ack-durability under power loss
// ---------------------------------------------------------------------------

/// Build the fixture's config with an explicit ack-durability policy.
fn config_with_sync(f: &Fixture, sync: SyncPolicy) -> ShardConfig {
    ShardConfig { sync, ..f.config() }
}

/// A reference service fed the first `n` `move_delta` batches, for
/// byte-identical comparison against a power-crash survivor.
fn reference_after(f: &Fixture, n: usize) -> (IndoorService, VenueId) {
    let reference = IndoorService::new();
    let id = reference.add_venue(f.venue.clone(), f.config()).unwrap();
    for slot in 0..n {
        reference.update_objects(id, &move_delta(f, slot)).unwrap();
    }
    (reference, id)
}

/// `SyncPolicy::PerAppend`: every acknowledged mutation is fsynced before
/// the ack, so power loss immediately after the last ack loses NOTHING —
/// the machine comes back at exactly the acked version, byte-identical.
#[test]
fn per_append_sync_makes_every_acked_write_power_durable() {
    let dir = PathBuf::from("/sync-per-append");
    let f = Fixture::new(Arc::new(random_venue(43)), 43);
    let storage = FaultStorage::new();

    let durable = open_faulted(&storage, &dir).unwrap();
    let id = durable
        .add_venue(f.venue.clone(), config_with_sync(&f, SyncPolicy::PerAppend))
        .unwrap();
    for slot in 0..4 {
        durable.update_objects(id, &move_delta(&f, slot)).unwrap();
    }
    assert_eq!(durable.version(id), Ok(4));

    // Power dies the instant after the fourth ack. No snapshot was ever
    // taken: durability rests entirely on the fsynced log.
    storage.crash(CrashMode::Power);
    drop(durable);

    let recovered = open_faulted(&storage, &dir).unwrap();
    assert_eq!(recovered.version(id), Ok(4), "acked writes must survive");
    let (reference, ref_id) = reference_after(&f, 4);
    assert_eq!(id, ref_id);
    assert_same_answers(&recovered, &reference, id, &f, 43, "per-append");
}

/// `SyncPolicy::Never` (the default): appends are acknowledged from the
/// page cache, so power loss rolls back to the last explicitly durable
/// point — here the snapshot — losing the acked-but-unsynced suffix as a
/// unit. The recovered state is consistent (old), never mixed.
#[test]
fn never_sync_power_loss_falls_back_to_last_snapshot() {
    let dir = PathBuf::from("/sync-never");
    let f = Fixture::new(Arc::new(random_venue(47)), 47);
    let storage = FaultStorage::new();

    let durable = open_faulted(&storage, &dir).unwrap();
    let id = durable
        .add_venue(f.venue.clone(), config_with_sync(&f, SyncPolicy::Never))
        .unwrap();
    durable.update_objects(id, &move_delta(&f, 0)).unwrap();
    durable.update_objects(id, &move_delta(&f, 1)).unwrap();
    durable.save_snapshot(&dir).unwrap(); // durable point: version 2
    durable.update_objects(id, &move_delta(&f, 2)).unwrap();
    durable.update_objects(id, &move_delta(&f, 3)).unwrap();
    assert_eq!(durable.version(id), Ok(4));

    storage.crash(CrashMode::Power);
    drop(durable);

    // v3 and v4 were acked from the page cache only; they evaporate.
    let recovered = open_faulted(&storage, &dir).unwrap();
    assert_eq!(recovered.version(id), Ok(2), "falls back to the snapshot");
    let (reference, _) = reference_after(&f, 2);
    assert_same_answers(&recovered, &reference, id, &f, 47, "never-sync");
}

/// `SyncPolicy::EveryN { n }`: the fsync is amortised over n appends, so
/// power loss is bounded to at most n−1 acknowledged records past the
/// last sync — and the survivor is a clean prefix, byte-identical to a
/// reference that stopped at the same version.
#[test]
fn every_n_sync_bounds_power_loss_to_n_minus_one_acks() {
    let dir = PathBuf::from("/sync-every-n");
    let f = Fixture::new(Arc::new(random_venue(53)), 53);
    let storage = FaultStorage::new();

    let durable = open_faulted(&storage, &dir).unwrap();
    let id = durable
        .add_venue(
            f.venue.clone(),
            config_with_sync(&f, SyncPolicy::EveryN { n: 2 }),
        )
        .unwrap();
    // Appends: Create (count 1), v1 (count 2 → fsync), v2 (1), v3 (2 →
    // fsync), v4 (1), v5 (2 → fsync), v6 (1, volatile).
    for slot in 0..6 {
        durable.update_objects(id, &move_delta(&f, slot)).unwrap();
    }
    assert_eq!(durable.version(id), Ok(6));

    storage.crash(CrashMode::Power);
    drop(durable);

    // Exactly one acked record (v6) sat past the last fsync: loss ≤ n−1.
    let recovered = open_faulted(&storage, &dir).unwrap();
    assert_eq!(recovered.version(id), Ok(5), "at most n-1 acks lost");
    let (reference, _) = reference_after(&f, 5);
    assert_same_answers(&recovered, &reference, id, &f, 53, "every-n");
}

/// `SyncPolicy::GroupCommit { max_delay: 0 }` degenerates to per-append
/// fsync (the deadline is always already due), so every ack survives
/// power loss — the deterministic end of the group-commit spectrum.
#[test]
fn group_commit_zero_delay_degenerates_to_per_append() {
    let dir = PathBuf::from("/sync-group-zero");
    let f = Fixture::new(Arc::new(random_venue(59)), 59);
    let storage = FaultStorage::new();

    let durable = open_faulted(&storage, &dir).unwrap();
    let id = durable
        .add_venue(
            f.venue.clone(),
            config_with_sync(
                &f,
                SyncPolicy::GroupCommit {
                    max_delay: std::time::Duration::ZERO,
                },
            ),
        )
        .unwrap();
    for slot in 0..3 {
        durable.update_objects(id, &move_delta(&f, slot)).unwrap();
    }

    storage.crash(CrashMode::Power);
    drop(durable);

    let recovered = open_faulted(&storage, &dir).unwrap();
    assert_eq!(recovered.version(id), Ok(3));
    let (reference, _) = reference_after(&f, 3);
    assert_same_answers(&recovered, &reference, id, &f, 59, "group-commit-0");
}

/// The policy is part of the persisted shard state: a restart recovered
/// from the WAL `Create` record (no snapshot) must come back ENFORCING
/// `PerAppend` — proven behaviourally by a post-restart ack surviving a
/// power cut, which `Never` (the default a lost policy would decay to)
/// deterministically fails under `FaultStorage`.
#[test]
fn sync_policy_survives_restart_via_wal_create_record() {
    let dir = PathBuf::from("/sync-restart-wal");
    let f = Fixture::new(Arc::new(random_venue(61)), 61);
    let storage = FaultStorage::new();

    let durable = open_faulted(&storage, &dir).unwrap();
    let id = durable
        .add_venue(f.venue.clone(), config_with_sync(&f, SyncPolicy::PerAppend))
        .unwrap();
    durable.update_objects(id, &move_delta(&f, 0)).unwrap();
    drop(durable); // clean process exit: page cache survives

    // Restart #1 replays Create + v1 from the log and must re-arm the
    // policy carried by the Create record.
    let reopened = open_faulted(&storage, &dir).unwrap();
    assert_eq!(reopened.version(id), Ok(1));
    reopened.update_objects(id, &move_delta(&f, 1)).unwrap();

    storage.crash(CrashMode::Power);
    drop(reopened);

    // v2 was acked after the restart; only a restored PerAppend policy
    // makes it power-durable.
    let recovered = open_faulted(&storage, &dir).unwrap();
    assert_eq!(
        recovered.version(id),
        Ok(2),
        "policy from the WAL Create record must survive restart"
    );
    let (reference, _) = reference_after(&f, 2);
    assert_same_answers(&recovered, &reference, id, &f, 61, "restart-wal");
}

/// Same property through the snapshot path: the policy rides in the
/// snapshot's slot state, and a service recovered from snapshot (WAL
/// rotated, Create record gone) still fsyncs per append.
#[test]
fn sync_policy_survives_restart_via_snapshot_state() {
    let dir = PathBuf::from("/sync-restart-snap");
    let f = Fixture::new(Arc::new(random_venue(67)), 67);
    let storage = FaultStorage::new();

    let durable = open_faulted(&storage, &dir).unwrap();
    let id = durable
        .add_venue(f.venue.clone(), config_with_sync(&f, SyncPolicy::PerAppend))
        .unwrap();
    durable.update_objects(id, &move_delta(&f, 0)).unwrap();
    let report = durable.save_snapshot(&dir).unwrap();
    assert!(
        report.wal_records_dropped > 0,
        "rotation dropped the prefix"
    );
    drop(durable);

    let reopened = open_faulted(&storage, &dir).unwrap();
    reopened.update_objects(id, &move_delta(&f, 1)).unwrap();

    storage.crash(CrashMode::Power);
    drop(reopened);

    let recovered = open_faulted(&storage, &dir).unwrap();
    assert_eq!(
        recovered.version(id),
        Ok(2),
        "policy from the snapshot slot state must survive restart"
    );
    let (reference, _) = reference_after(&f, 2);
    assert_same_answers(&recovered, &reference, id, &f, 67, "restart-snap");
}
