//! Scale smoke tests on the calibrated presets: builds stay fast, queries
//! stay correct (sampled against the Dijkstra oracle), and the structural
//! quantities the paper reports (ρ, f, α < 4 on average; max superior
//! doors ≈ 8) hold on our venues too.

use indoor_spatial::graph::DijkstraEngine;
use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, workload};
use indoor_spatial::vip::TreeStats;
use std::sync::Arc;

fn oracle(
    venue: &Venue,
    engine: &mut DijkstraEngine,
    s: &IndoorPoint,
    t: &IndoorPoint,
) -> Option<f64> {
    let direct = s.direct_distance(venue, t);
    let via = engine
        .point_to_point(venue.d2d(), &s.door_seeds(venue), &t.door_seeds(venue))
        .map(|(d, _)| d);
    match (direct, via) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

#[test]
fn menzies_2_correct_and_paper_shaped() {
    let venue = Arc::new(presets::menzies_2().build());
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();

    let stats = TreeStats::compute(tree.ip_tree());
    assert!(
        stats.avg_access_doors < 6.0,
        "rho {}",
        stats.avg_access_doors
    );
    assert!(
        stats.avg_superior_doors < 4.0,
        "alpha {}",
        stats.avg_superior_doors
    );
    assert!(stats.avg_fanout < 8.0, "f {}", stats.avg_fanout);

    let mut engine = DijkstraEngine::new(venue.num_doors());
    for (s, t) in workload::query_pairs(&venue, 60, 1) {
        let want = oracle(&venue, &mut engine, &s, &t).expect("connected venue");
        let got = tree.shortest_distance_points(&s, &t).expect("reachable");
        assert!(
            (want - got).abs() < 1e-6 * want.max(1.0),
            "got {got}, want {want}"
        );
    }
    for (s, t) in workload::query_pairs(&venue, 25, 2) {
        let p = tree.shortest_path_points(&s, &t).expect("reachable");
        let len = p.validate(&venue).expect("valid path");
        assert!((len - p.length).abs() < 1e-6 * len.max(1.0));
    }
    assert_eq!(tree.decompose_fallback_count(), 0);
}

#[test]
fn clayton_lite_campus_correct() {
    let venue = Arc::new(presets::clayton_lite().build());
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();

    let mut engine = DijkstraEngine::new(venue.num_doors());
    for (s, t) in workload::query_pairs(&venue, 30, 3) {
        let want = oracle(&venue, &mut engine, &s, &t).expect("connected campus");
        let got = tree.shortest_distance_points(&s, &t).expect("reachable");
        assert!(
            (want - got).abs() < 1e-6 * want.max(1.0),
            "got {got}, want {want}"
        );
    }

    // Cross-building kNN with sparse objects (the paper's hard case).
    let objects = workload::place_objects(&venue, 10, 4);
    tree.attach_objects(&objects);
    for q in workload::query_points(&venue, 10, 5) {
        let got = tree.knn(&q, 3);
        let mut want: Vec<f64> = objects
            .iter()
            .filter_map(|o| oracle(&venue, &mut engine, &q, o))
            .collect();
        want.sort_by(f64::total_cmp);
        assert_eq!(got.len(), 3.min(want.len()));
        for (i, (_, d)) in got.iter().enumerate() {
            assert!(
                (d - want[i]).abs() < 1e-6 * want[i].max(1.0),
                "rank {i}: got {d}, want {}",
                want[i]
            );
        }
    }
    assert_eq!(tree.decompose_fallback_count(), 0);
}
