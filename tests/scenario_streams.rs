//! Property tests for the scenario-lab workload compiler
//! (`crates/scenarios`): for *arbitrary* profiles — not just the six
//! committed standards — compilation must be bit-deterministic for a
//! fixed seed regardless of thread count, and every generated stream
//! must pass the independent validator (venue ids in range, no query or
//! delta to a dead venue, no `DeltaError`-shaped update batch).
//!
//! These are the properties `scenario_check` relies on in CI: the
//! fingerprint gate is only meaningful if identical seeds really do
//! reproduce identical streams on any runner.

use indoor_scenarios::{compile, validate_stream, ScenarioWorld};
use indoor_spatial::model::{AdmissionSpec, OverloadSpec, VenueAction, VenueEvent};
use indoor_spatial::prelude::*;
use indoor_spatial::synth::random_venue;
use proptest::prelude::*;
use std::sync::Arc;

fn world() -> ScenarioWorld {
    ScenarioWorld::new(vec![
        Arc::new(random_venue(70)),
        Arc::new(random_venue(71)),
        Arc::new(random_venue(72)),
    ])
}

/// Assemble a profile from raw generator draws, exercising every
/// vocabulary axis: arrival shape, keyword skew, churn, admission,
/// multi-venue traffic and mid-run lifecycle.
#[allow(clippy::too_many_arguments)]
fn profile(
    ticks: u32,
    qpt: u32,
    arrival: u8,
    slots: u32,
    keywords: bool,
    churn: bool,
    lifecycle: bool,
    admission: bool,
) -> WorkloadProfile {
    let mut p = WorkloadProfile::base("prop");
    p.ticks = ticks;
    p.queries_per_tick = qpt;
    p.initial_slots = slots;
    p.arrival = match arrival % 3 {
        0 => ArrivalCurve::Constant,
        1 => ArrivalCurve::Diurnal {
            trough_pct: 20,
            cycles: 2,
        },
        _ => ArrivalCurve::Spike {
            start: ticks / 4,
            len: (ticks / 4).max(1),
            magnify: 5,
        },
    };
    if matches!(p.arrival, ArrivalCurve::Spike { .. }) {
        p.hot_slot = Some(0);
    }
    if keywords {
        p.keywords = Some(KeywordSkew {
            vocabulary: 8,
            exponent: 2,
        });
        p.mix = QueryMix::uniform();
    }
    if churn {
        p.churn = Some(ChurnSpec {
            base_per_tick: 12,
            curve: ArrivalCurve::Spike {
                start: ticks / 3,
                len: (ticks / 3).max(1),
                magnify: 4,
            },
            insert_pct: 30,
            remove_pct: 30,
        });
    }
    if lifecycle && slots < 3 {
        // Venue 2 joins mid-run, serves, and retires again.
        p.venue_events = vec![
            VenueEvent {
                tick: ticks / 3,
                action: VenueAction::Add { slot: 2 },
            },
            VenueEvent {
                tick: 2 * ticks / 3,
                action: VenueAction::Remove { slot: 2 },
            },
        ];
    }
    if admission {
        p.admission = vec![AdmissionSpec {
            slot: 0,
            max_in_flight: 2,
            policy: OverloadSpec::Shed,
        }];
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The fingerprint contract behind `scenario_check`: one seed, one
    /// stream — no matter how many compile threads, and stable across
    /// repeated compilations. A different seed must not collide.
    #[test]
    fn compilation_is_bit_deterministic_for_a_fixed_seed(
        seed in 0u64..10_000,
        ticks in 4u32..16,
        qpt in 4u32..32,
        arrival in 0u8..3,
        slots in 1u32..3,
        flags in 0u8..16,
    ) {
        let world = world();
        let p = profile(
            ticks, qpt, arrival, slots,
            flags & 1 != 0, flags & 2 != 0, flags & 4 != 0, flags & 8 != 0,
        );
        let fp1 = fingerprint_stream(&compile(&p, &world, seed, 1));
        for threads in [2usize, 5] {
            prop_assert_eq!(
                fp1,
                fingerprint_stream(&compile(&p, &world, seed, threads)),
                "thread count {} changed the stream", threads
            );
        }
        prop_assert_eq!(fp1, fingerprint_stream(&compile(&p, &world, seed, 1)));
        assert_ne!(
            fp1,
            fingerprint_stream(&compile(&p, &world, seed ^ 0x9E37_79B9, 1)),
            "distinct seeds collided"
        );
    }

    /// Every generated stream is well-formed under the independent
    /// validator: ticks ordered, venue ids in range, queries and updates
    /// only to live venues, delta batches applicable without
    /// `DeltaError`, partitions within venue bounds.
    #[test]
    fn generated_streams_pass_the_independent_validator(
        seed in 0u64..10_000,
        ticks in 4u32..16,
        qpt in 4u32..32,
        arrival in 0u8..3,
        slots in 1u32..3,
        flags in 0u8..16,
    ) {
        let world = world();
        let p = profile(
            ticks, qpt, arrival, slots,
            flags & 1 != 0, flags & 2 != 0, flags & 4 != 0, flags & 8 != 0,
        );
        let stream = compile(&p, &world, seed, 3);
        prop_assert_eq!(stream.len(), ticks as usize);
        if let Err(e) = validate_stream(&p, &world, &stream) {
            panic!("invalid stream: {e}");
        }
        // The stream is non-trivial: at least one query per tick floor.
        let queries: usize = stream.iter().map(TickEvents::queries).sum();
        prop_assert!(queries > 0, "profile generated no queries at all");
    }
}
