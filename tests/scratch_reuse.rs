//! Scratch-reuse soundness: a single `QueryScratch` driven through an
//! interleaving of every query kind must answer exactly like a fresh
//! scratch per call. This is the test that catches stale-epoch marks,
//! un-cleared heaps, and arena residue — the failure modes of reusing
//! per-query state.

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{random_venue, workload};
use indoor_spatial::vip::{KeywordObjects, QueryScratch};
use std::sync::Arc;

fn label_for(i: usize) -> Vec<String> {
    match i % 3 {
        0 => vec!["washroom".into()],
        1 => vec!["atm".into(), "washroom".into()],
        _ => vec!["atm".into()],
    }
}

fn assert_same(
    got: &[(indoor_spatial::model::ObjectId, f64)],
    want: &[(indoor_spatial::model::ObjectId, f64)],
    what: &str,
) {
    assert_eq!(got.len(), want.len(), "{what}: result count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.0, w.0, "{what}: object id");
        assert_eq!(g.1.to_bits(), w.1.to_bits(), "{what}: distance bits");
    }
}

#[test]
fn one_scratch_interleaved_matches_fresh_scratch() {
    for seed in [21u64, 555, 8080] {
        let venue = Arc::new(random_venue(seed));
        let objects = workload::place_objects(&venue, 24, seed ^ 0x77);
        let labelled: Vec<(IndoorPoint, Vec<String>)> = objects
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, label_for(i)))
            .collect();

        let vip = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        vip.attach_objects(&objects);
        let ip = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        ip.attach_objects(&objects);
        let kw = KeywordObjects::build(&ip, &labelled);

        let points = workload::query_points(&venue, 12, seed ^ 0x88);
        let pairs = workload::query_pairs(&venue, 12, seed ^ 0x99);

        // ONE scratch for the whole interleaved workload.
        let mut reused = QueryScratch::new();

        for (i, q) in points.iter().enumerate() {
            let (s, t) = &pairs[i];

            let got = vip.knn_in(q, 1 + i % 6, &mut reused);
            let want = vip.knn_in(q, 1 + i % 6, &mut QueryScratch::new());
            assert_same(&got, &want, &format!("seed {seed}: vip kNN {i}"));

            let got = ip.range_in(q, 40.0 + 25.0 * i as f64, &mut reused);
            let want = ip.range_in(q, 40.0 + 25.0 * i as f64, &mut QueryScratch::new());
            assert_same(&got, &want, &format!("seed {seed}: ip range {i}"));

            let label = ["washroom", "atm", "missing"][i % 3];
            let got = kw.knn_keyword_in(&ip, q, 3, label, &mut reused);
            let want = kw.knn_keyword_in(&ip, q, 3, label, &mut QueryScratch::new());
            assert_same(&got, &want, &format!("seed {seed}: keyword {i} ({label})"));

            let got = vip.shortest_distance_in(s, t, &mut reused);
            let want = vip.shortest_distance_in(s, t, &mut QueryScratch::new());
            assert_eq!(
                got.map(f64::to_bits),
                want.map(f64::to_bits),
                "seed {seed}: vip distance {i}"
            );

            let got = ip.shortest_path_in(s, t, &mut reused);
            let want = ip.shortest_path_in(s, t, &mut QueryScratch::new());
            assert_eq!(
                got.as_ref().map(|p| &p.doors),
                want.as_ref().map(|p| &p.doors),
                "seed {seed}: ip path doors {i}"
            );
            assert_eq!(
                got.map(|p| p.length.to_bits()),
                want.map(|p| p.length.to_bits()),
                "seed {seed}: ip path length {i}"
            );
        }
    }
}

/// The kNN answer must not depend on which query kind warmed the scratch
/// beforehand (arena/heap/mark residue from a *different* traversal
/// shape is the classic stale-state bug).
#[test]
fn scratch_warmed_by_other_queries_is_clean() {
    let venue = Arc::new(random_venue(99));
    let vip = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    vip.attach_objects(&workload::place_objects(&venue, 18, 5));
    let points = workload::query_points(&venue, 6, 0xEE);
    let pairs = workload::query_pairs(&venue, 6, 0xEF);

    let fresh: Vec<_> = points
        .iter()
        .map(|q| vip.knn_in(q, 5, &mut QueryScratch::new()))
        .collect();

    // Warm a scratch differently before each kNN repetition.
    for warm in 0..3 {
        let mut s = QueryScratch::new();
        for (i, q) in points.iter().enumerate() {
            match warm {
                0 => {
                    vip.range_in(q, 500.0, &mut s);
                }
                1 => {
                    let (a, b) = &pairs[i];
                    vip.shortest_path_in(a, b, &mut s);
                }
                _ => {
                    vip.knn_in(q, 1, &mut s);
                }
            }
            let got = vip.knn_in(q, 5, &mut s);
            assert_eq!(got.len(), fresh[i].len(), "warm {warm}: kNN {i} count");
            for (g, w) in got.iter().zip(&fresh[i]) {
                assert_eq!(g.0, w.0, "warm {warm}: kNN {i} object");
                assert_eq!(g.1.to_bits(), w.1.to_bits(), "warm {warm}: kNN {i} dist");
            }
        }
    }
}
