//! A venue survives JSON round-tripping, and indexes built over the
//! reloaded venue answer queries identically.

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{random_venue, workload};
use std::sync::Arc;

#[test]
fn roundtrip_preserves_query_answers() {
    let venue = Arc::new(random_venue(2024));
    let mut buf = Vec::new();
    venue.save_json(&mut buf).expect("serialise");
    let reloaded = Arc::new(Venue::load_json(buf.as_slice()).expect("deserialise"));

    assert_eq!(venue.stats(), reloaded.stats());

    let cfg = VipTreeConfig::default();
    let a = VipTree::build(venue.clone(), &cfg).unwrap();
    let b = VipTree::build(reloaded.clone(), &cfg).unwrap();

    for (s, t) in workload::query_pairs(&venue, 40, 5) {
        let da = a.shortest_distance_points(&s, &t);
        let db = b.shortest_distance_points(&s, &t);
        match (da, db) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9 * x.max(1.0)),
            (None, None) => {}
            _ => panic!("reachability changed across serialisation"),
        }
    }
}

#[test]
fn save_is_deterministic() {
    let venue = random_venue(55);
    let mut a = Vec::new();
    let mut b = Vec::new();
    venue.save_json(&mut a).unwrap();
    venue.save_json(&mut b).unwrap();
    assert_eq!(a, b);
}
