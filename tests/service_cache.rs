//! `IndoorService` contract: multi-venue routing, the version-stamped
//! result cache (a cached object answer is **never** served across an
//! `attach_objects` bump — the acceptance criterion), and keyword
//! indexes surviving object-set replacement.

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{presets, random_venue, workload};
use indoor_spatial::vip::KeywordObjects;
use std::sync::Arc;

const KEYWORD: &str = "cafe";

fn labelled(objects: &[IndoorPoint]) -> Vec<(IndoorPoint, Vec<String>)> {
    workload::cycling_labels(objects, KEYWORD)
}

/// Cache hits after `attach_objects` are impossible: the answer always
/// reflects the new object set, and the hit counter does not move on the
/// first post-bump query.
#[test]
fn epoch_bump_invalidates_cache() {
    let venue = Arc::new(random_venue(31));
    let old_objects = workload::place_objects(&venue, 10, 1);
    let new_objects = workload::place_objects(&venue, 10, 2);
    assert_ne!(old_objects, new_objects);

    let service = IndoorService::new();
    let id = service
        .add_venue(
            venue.clone(),
            ShardConfig {
                threads: 1,
                objects: old_objects.clone(),
                ..ShardConfig::default()
            },
        )
        .unwrap();

    // Reference answers from plain trees over each object set.
    let answers_for = |objects: &[IndoorPoint], q: &IndoorPoint| {
        let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        tree.attach_objects(objects);
        tree.knn(q, 4)
    };

    let queries = workload::query_points(&venue, 6, 3);
    let reqs: Vec<QueryRequest> = queries
        .iter()
        .map(|&q| QueryRequest::Knn { q, k: 4 })
        .collect();

    // Warm the cache, then hit it once per request.
    for req in &reqs {
        service.execute(id, req).unwrap();
        service.execute(id, req).unwrap();
    }
    let before = service.stats();
    assert_eq!(before.kind(QueryKind::Knn).queries, 2 * reqs.len() as u64);
    assert_eq!(before.kind(QueryKind::Knn).cache_hits, reqs.len() as u64);
    assert_eq!(service.epoch(id).unwrap(), 0);

    service.attach_objects(id, &new_objects).unwrap();
    assert_eq!(service.epoch(id).unwrap(), 1);
    assert_eq!(service.stats().cached_entries, 0, "bump clears the cache");

    for (req, q) in reqs.iter().zip(&queries) {
        let got = service.execute(id, req).unwrap();
        let want = answers_for(&new_objects, q);
        assert_eq!(
            got,
            QueryResponse::Knn(want),
            "post-bump answer must reflect the new objects"
        );
    }
    let after = service.stats();
    assert_eq!(
        after.kind(QueryKind::Knn).cache_hits,
        before.kind(QueryKind::Knn).cache_hits,
        "no cache hit may survive an epoch bump"
    );

    // The re-computed answers are cached again under the new epoch.
    service.execute(id, &reqs[0]).unwrap();
    assert_eq!(
        service.stats().kind(QueryKind::Knn).cache_hits,
        before.kind(QueryKind::Knn).cache_hits + 1
    );
}

/// Regression (keyword threading): a shard built with keyword objects
/// keeps answering keyword requests after `attach_objects` rebuilds its
/// engine — the service re-threads the keyword index automatically, where
/// a bare `QueryEngine` would have to be re-`with_keywords` by hand.
#[test]
fn keywords_survive_attach_objects_rebuild() {
    let venue = Arc::new(random_venue(47));
    let objects = workload::place_objects(&venue, 14, 5);
    let kw_objects = labelled(&objects);

    let service = IndoorService::new();
    let id = service
        .add_venue(
            venue.clone(),
            ShardConfig {
                threads: 1,
                objects: objects.clone(),
                keywords: kw_objects.clone(),
                ..ShardConfig::default()
            },
        )
        .unwrap();

    // Ground truth from a hand-assembled engine.
    let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    let kw = KeywordObjects::build(&tree, &kw_objects);

    let q = workload::query_points(&venue, 1, 6)[0];
    let req = QueryRequest::KnnKeyword {
        q,
        k: 3,
        keyword: KEYWORD.into(),
    };
    let want = QueryResponse::KnnKeyword(kw.knn_keyword(&tree, &q, 3, KEYWORD));
    assert_eq!(service.execute(id, &req).unwrap(), want);
    assert_ne!(want, QueryResponse::KnnKeyword(Vec::new()));

    // Rebuild the shard's engine; keyword answers must not regress to
    // empty (the pre-fix failure mode: keywords dropped on rebuild).
    service
        .attach_objects(id, &workload::place_objects(&venue, 14, 9))
        .unwrap();
    assert_eq!(
        service.execute(id, &req).unwrap(),
        want,
        "keyword index must be re-threaded through the rebuilt engine"
    );
}

/// A caller-held tree handle no longer blocks `attach_objects`: object
/// sets swap *inside* the shared tree, so the attach succeeds under
/// `&self` and the held handle observes the new objects (pre-refactor,
/// this returned a `SharedIndex` error and deferred the churn).
#[test]
fn shared_tree_handle_observes_attach() {
    let venue = Arc::new(random_venue(53));
    let objects = workload::place_objects(&venue, 8, 1);
    let service = IndoorService::new();
    let id = service
        .add_venue(
            venue.clone(),
            ShardConfig {
                threads: 1,
                objects,
                ..ShardConfig::default()
            },
        )
        .unwrap();

    let q = workload::query_points(&venue, 1, 2)[0];
    let req = QueryRequest::Knn { q, k: 3 };
    let before = service.execute(id, &req).unwrap();

    let held = service.engine(id).unwrap().tree().clone();
    let new_objects = workload::place_objects(&venue, 8, 2);
    service
        .attach_objects(id, &new_objects)
        .expect("held handles never block the swap");
    assert_eq!(service.epoch(id).unwrap(), 1);
    assert_eq!(service.version(id).unwrap(), 1);

    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    tree.attach_objects(&new_objects);
    let want = tree.knn(&q, 3);
    assert_eq!(
        service.execute(id, &req).unwrap(),
        QueryResponse::Knn(want.clone()),
        "post-swap answers reflect the new objects"
    );
    assert_ne!(QueryResponse::Knn(want.clone()), before);
    assert_eq!(
        held.ip().knn(&q, 3),
        want,
        "the held handle observes the swapped object set"
    );
}

/// Multi-venue routing: a shuffled cross-venue batch answers every slot
/// exactly as the venue's own engine would, and venues never bleed into
/// each other (distinct object sets give distinct answers).
#[test]
fn multi_venue_batches_route_correctly() {
    let venue_a = Arc::new(presets::melbourne_central().build());
    let venue_b = Arc::new(random_venue(12));
    let objects_a = workload::place_objects(&venue_a, 20, 1);
    let objects_b = workload::place_objects(&venue_b, 20, 2);

    let service = IndoorService::new();
    let id_a = service
        .add_venue(
            venue_a.clone(),
            ShardConfig {
                threads: 2,
                objects: objects_a.clone(),
                keywords: labelled(&objects_a),
                ..ShardConfig::default()
            },
        )
        .unwrap();
    let id_b = service
        .add_venue(
            venue_b.clone(),
            ShardConfig {
                threads: 1,
                objects: objects_b.clone(),
                keywords: labelled(&objects_b),
                ..ShardConfig::default()
            },
        )
        .unwrap();
    assert_eq!(service.venue_count(), 2);
    assert_eq!(service.venues(), vec![id_a, id_b]);

    let mut reqs: Vec<(VenueId, QueryRequest)> = Vec::new();
    for req in workload::mixed_requests(&venue_a, 4, 3, 110.0, KEYWORD, 3) {
        reqs.push((id_a, req));
    }
    for req in workload::mixed_requests(&venue_b, 4, 3, 110.0, KEYWORD, 4) {
        reqs.push((id_b, req));
    }
    workload::shuffle(&mut reqs, 99);

    let got = service.execute_batch(&reqs);
    assert_eq!(got.len(), reqs.len());
    for (slot, (venue, req)) in reqs.iter().enumerate() {
        let want = service.engine(*venue).unwrap().execute(req);
        assert_eq!(got[slot].as_ref().unwrap(), &want, "slot {slot}");
    }

    // Replaying the batch is answered fully from cache.
    let stats0 = service.stats();
    let replay = service.execute_batch(&reqs);
    assert_eq!(replay, got);
    let stats1 = service.stats();
    assert_eq!(
        stats1.total_cache_hits() - stats0.total_cache_hits(),
        reqs.len() as u64,
        "replay must be all hits"
    );
    assert!(stats1.hit_rate() > 0.0);
}
