//! Typed-request API contract: a shuffled **heterogeneous**
//! `execute_batch` must return byte-identical results to the per-kind
//! batch calls, in input-slot order, for any thread count — the
//! acceptance bar of the request/response redesign.

use indoor_spatial::prelude::*;
use indoor_spatial::synth::{random_venue, workload};
use indoor_spatial::vip::KeywordObjects;
use proptest::prelude::*;
use std::sync::Arc;

const K: usize = 3;
const RADIUS: f64 = 100.0;
const KEYWORD: &str = "cafe";

fn engine_for(venue: &Arc<Venue>, seed: u64, threads: usize) -> QueryEngine {
    let objects = workload::place_objects(venue, 16, seed ^ 0x51);
    let labelled = workload::cycling_labels(&objects, KEYWORD);
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    tree.attach_objects(&objects);
    let kw = Arc::new(KeywordObjects::build(tree.ip_tree(), &labelled));
    QueryEngine::for_vip(Arc::new(tree))
        .with_threads(threads)
        .with_keywords(kw)
}

/// Bit-level equality between a heterogeneous response and the per-kind
/// answer for the same slot.
fn assert_bit_identical(slot: usize, got: &QueryResponse, want: &QueryResponse) {
    let bits = |v: &[(indoor_spatial::model::ObjectId, f64)]| -> Vec<(u32, u64)> {
        v.iter().map(|(o, d)| (o.0, d.to_bits())).collect()
    };
    assert_eq!(got.kind(), want.kind(), "slot {slot}: kind");
    match (got, want) {
        (QueryResponse::Knn(a), QueryResponse::Knn(b))
        | (QueryResponse::Range(a), QueryResponse::Range(b))
        | (QueryResponse::KnnKeyword(a), QueryResponse::KnnKeyword(b)) => {
            assert_eq!(bits(a), bits(b), "slot {slot}: objects");
        }
        (QueryResponse::ShortestDistance(a), QueryResponse::ShortestDistance(b)) => {
            assert_eq!(
                a.map(f64::to_bits),
                b.map(f64::to_bits),
                "slot {slot}: distance"
            );
        }
        (QueryResponse::ShortestPath(a), QueryResponse::ShortestPath(b)) => {
            assert_eq!(
                a.as_ref().map(|p| &p.doors),
                b.as_ref().map(|p| &p.doors),
                "slot {slot}: path doors"
            );
            assert_eq!(
                a.as_ref().map(|p| p.length.to_bits()),
                b.as_ref().map(|p| p.length.to_bits()),
                "slot {slot}: path length"
            );
        }
        _ => unreachable!("kinds already matched"),
    }
}

/// Reconstruct per-slot expectations from the five per-kind batch calls:
/// split the mixed batch by kind (preserving slot order within each
/// kind), run each per-kind API once, and scatter the answers back.
fn per_kind_expectations(engine: &QueryEngine, reqs: &[QueryRequest]) -> Vec<QueryResponse> {
    let mut knn_slots = Vec::new();
    let mut knn_qs = Vec::new();
    let mut range_slots = Vec::new();
    let mut range_qs = Vec::new();
    let mut kw_slots = Vec::new();
    let mut kw_qs = Vec::new();
    let mut sd_slots = Vec::new();
    let mut sd_pairs = Vec::new();
    let mut sp_slots = Vec::new();
    let mut sp_pairs = Vec::new();
    for (slot, req) in reqs.iter().enumerate() {
        match req {
            QueryRequest::Knn { q, .. } => {
                knn_slots.push(slot);
                knn_qs.push(*q);
            }
            QueryRequest::Range { q, .. } => {
                range_slots.push(slot);
                range_qs.push(*q);
            }
            QueryRequest::KnnKeyword { q, .. } => {
                kw_slots.push(slot);
                kw_qs.push(*q);
            }
            QueryRequest::ShortestDistance { s, t } => {
                sd_slots.push(slot);
                sd_pairs.push((*s, *t));
            }
            QueryRequest::ShortestPath { s, t } => {
                sp_slots.push(slot);
                sp_pairs.push((*s, *t));
            }
        }
    }

    let mut out: Vec<Option<QueryResponse>> = vec![None; reqs.len()];
    for (slot, r) in knn_slots.iter().zip(engine.batch_knn(&knn_qs, K)) {
        out[*slot] = Some(QueryResponse::Knn(r));
    }
    for (slot, r) in range_slots
        .iter()
        .zip(engine.batch_range(&range_qs, RADIUS))
    {
        out[*slot] = Some(QueryResponse::Range(r));
    }
    for (slot, r) in kw_slots
        .iter()
        .zip(engine.batch_knn_keyword(&kw_qs, K, KEYWORD))
    {
        out[*slot] = Some(QueryResponse::KnnKeyword(r));
    }
    for (slot, r) in sd_slots
        .iter()
        .zip(engine.batch_shortest_distance(&sd_pairs))
    {
        out[*slot] = Some(QueryResponse::ShortestDistance(r));
    }
    for (slot, r) in sp_slots.iter().zip(engine.batch_shortest_path(&sp_pairs)) {
        out[*slot] = Some(QueryResponse::ShortestPath(r));
    }
    out.into_iter().map(Option::unwrap).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance-criteria property: shuffled heterogeneous batches
    /// are byte-identical to the per-kind batch calls, slot for slot,
    /// across thread counts.
    #[test]
    fn heterogeneous_batch_is_bit_identical_to_per_kind(seed in 0u64..600, n_per_kind in 1usize..8) {
        let venue = Arc::new(random_venue(seed));
        let reqs = workload::mixed_requests(&venue, n_per_kind, K, RADIUS, KEYWORD, seed ^ 0x99);
        for threads in [1usize, 4] {
            let engine = engine_for(&venue, seed, threads);
            let got = engine.execute_batch(&reqs);
            prop_assert_eq!(got.len(), reqs.len());
            let want = per_kind_expectations(&engine, &reqs);
            for (slot, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_bit_identical(slot, g, w);
            }
            // And the single-request path agrees too.
            for (slot, req) in reqs.iter().enumerate() {
                assert_bit_identical(slot, &engine.execute(req), &got[slot]);
            }
        }
    }
}

/// Without a keyword index, keyword requests answer empty — through every
/// surface (mirrors `KeywordObjects::knn_keyword` on an unknown term).
#[test]
fn keyword_requests_without_index_answer_empty() {
    let venue = Arc::new(random_venue(77));
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    tree.attach_objects(&workload::place_objects(&venue, 10, 1));
    let engine = QueryEngine::for_vip(Arc::new(tree)).with_threads(1);
    let q = workload::query_points(&venue, 1, 2)[0];
    let req = QueryRequest::KnnKeyword {
        q,
        k: 3,
        keyword: KEYWORD.into(),
    };
    assert_eq!(engine.execute(&req), QueryResponse::KnnKeyword(Vec::new()));
    assert_eq!(engine.batch_knn_keyword(&[q], 3, KEYWORD), vec![Vec::new()]);
}
