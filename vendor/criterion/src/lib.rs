//! A minimal, dependency-free stand-in for the subset of `criterion` the
//! bench harness uses: `Criterion`, benchmark groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build container has no registry access, so the real crate cannot be
//! fetched. The shim measures a configurable warm-up followed by a timed
//! measurement window and prints mean iteration time — no statistics,
//! plots, or saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// `(total_time, iterations)` of the measurement window.
    result: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.config.warm_up_time {
            std::hint::black_box(routine());
        }
        // Measurement: run until the measurement budget elapses, with at
        // least `sample_size` iterations so short budgets still sample.
        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.config.measurement_time
            || iters < self.config.sample_size as u64
        {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.result = Some((start.elapsed(), iters));
    }
}

#[derive(Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&self.config, id, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(config: &Config, id: &str, mut f: F) {
    let mut b = Bencher {
        config,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((total, iters)) if iters > 0 => {
            let mean_ns = total.as_nanos() as f64 / iters as f64;
            println!("{id:<40} {:>12} {iters:>10} iters", fmt_ns(mean_ns));
        }
        _ => println!("{id:<40} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.criterion.config, &full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.criterion.config, &full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let config = Config {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
        };
        let mut b = Bencher {
            config: &config,
            result: None,
        };
        b.iter(|| 1 + 1);
        let (total, iters) = b.result.unwrap();
        assert!(iters >= 3);
        assert!(total >= Duration::from_millis(5));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.finish();
    }
}
