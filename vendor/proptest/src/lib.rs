//! A minimal, dependency-free stand-in for the subset of `proptest` used by
//! this workspace: the `proptest!` macro with `name in range` binders,
//! `prop_assert!` / `prop_assert_eq!`, `ProptestConfig::with_cases`, range
//! strategies over the primitive numeric types, tuple strategies, and
//! `proptest::collection::vec`.
//!
//! The build container has no registry access, so the real crate cannot be
//! fetched. Differences from upstream: cases are sampled uniformly (no
//! bias towards boundaries) and there is no shrinking — a failing case
//! prints its inputs instead. Sampling is deterministic per test name and
//! case index, so failures reproduce exactly.

use rand::{Rng, SeedableRng, StdRng};
use std::ops::Range;

/// Per-test deterministic source of randomness.
pub struct TestRng {
    pub(crate) inner: StdRng,
}

impl TestRng {
    /// Seeded from the fully-qualified test name and the case index, so a
    /// failing case can be re-run bit-identically.
    pub fn new(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

/// Run-time configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

#[doc(hidden)]
pub fn resolve_cases(cfg: &ProptestConfig) -> u64 {
    u64::from(cfg.cases)
}

/// A value generator. Implemented for primitive ranges, tuples of
/// strategies, and [`collection::vec`].
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Collection strategies (only `vec` with a fixed or ranged length).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specifier: a fixed `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.inner.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: IntoSizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `proptest!`-compatible assertion: panics (no shrink phase to feed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `proptest!`-compatible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// The `proptest! { ... }` block: each `#[test] fn name(x in strategy, ...)`
/// becomes a plain `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::resolve_cases(&$cfg);
                for case in 0..cases {
                    let mut __rng = $crate::TestRng::new(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest shim: {} failed at case {case} with inputs {:?}",
                            stringify!($name),
                            ($(&$arg,)+)
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
}

/// Everything a test module needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(a in 0u64..100, b in -5..5i32, f in -1.0..1.0f64) {
            prop_assert!(a < 100);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((-1.0..1.0).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_strategy_generates_requested_len(n in 1usize..6) {
            let mut rng = crate::TestRng::new("vec_strategy", n as u64);
            let v = crate::Strategy::generate(
                &crate::collection::vec((0u64..10, 0u64..10), n),
                &mut rng,
            );
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = crate::TestRng::new("x", 3);
        let mut b = crate::TestRng::new("x", 3);
        let s = 0u64..1_000_000;
        assert_eq!(
            crate::Strategy::generate(&s, &mut a),
            crate::Strategy::generate(&s, &mut b)
        );
    }
}
