//! A minimal, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` over integer and float ranges.
//!
//! The build container has no registry access, so the real crate cannot be
//! fetched; this shim keeps the same API surface with a SplitMix64 /
//! xoshiro256++ generator. Streams differ from upstream `rand`, but every
//! consumer in the workspace only requires determinism per seed, not a
//! particular stream.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic 64-bit PRNG (xoshiro256++ seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Seeding subset: only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, as recommended by the xoshiro
        // authors for initialising the full state.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    #[inline]
    pub(crate) fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1) with 53 bits of precision.
    #[inline]
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 below `bound` (> 0) without modulo bias (widening
    /// multiply with rejection).
    #[inline]
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected sample from the biased region: draw again.
        }
    }
}

/// A type that can be drawn from a half-open or inclusive range.
pub trait SampleUniform: Copy {
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty gen_range span");
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "empty gen_range span");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    fn gen<T: Standard>(&mut self) -> T;
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    #[inline]
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..25);
            assert!((3..25).contains(&v));
            let w = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(0.5..5.0);
            assert!((0.5..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency_is_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniformity_over_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }
}
